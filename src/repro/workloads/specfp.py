"""SPECFP2006-shaped kernels.

Floating-point codes: large straight-line basic blocks, few and highly
biased branches, streaming memory access, very high dynamic-to-static
instruction ratio.  Per the paper these push ~96% of the dynamic stream
into SBM at the lowest emulation cost (~2.6 host/guest).
"""

from __future__ import annotations

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EBP, ESI, EDI,
    F0, F1, F2, F3, F4, F5, F6, F7, M,
)
from repro.guest.program import GuestProgram
from repro.workloads.common import (
    SPECFP, emit_warm_code, f64_table, register, scaled,
)

A = 0x0020_0000
B = 0x0024_0000
C = 0x0028_0000
OUT = 0x002C_0000


def _fp_kernel(name: str, seed: int, body, n: int = 512,
               base_iters: int = 60, cold: int = 6):
    """Template: outer pass loop over an inner streaming loop whose body
    is supplied by ``body(asm)`` (reads [A+ESI*8] in F0, [B+ESI*8] in F1,
    accumulates into F7, may use F2..F6)."""
    def build(scale: float = 1.0) -> GuestProgram:
        asm = Assembler()
        asm.data(A, f64_table(seed, n, 0.1, 2.0))
        asm.data(B, f64_table(seed + 1, n, 0.1, 2.0))
        iters = scaled(base_iters, scale)
        asm.fldi(F7, 0)
        asm.mov(EBP, A)
        asm.mov(EBX, B)
        asm.mov(EDI, C)
        with asm.counted_loop(EDX, iters):
            asm.mov(ESI, 0)
            with asm.counted_loop(ECX, n):
                asm.fld(F0, M(EBP, ESI, 8))
                asm.fld(F1, M(EBX, ESI, 8))
                body(asm)
                asm.inc(ESI)
        asm.fst(M(None, disp=OUT), F7)
        emit_warm_code(asm, 3, 46, seed)
        # Small cold tail: setup/IO style code executed once.
        for i in range(cold):
            asm.mov(EAX, 0x100 + i)
            asm.imul(EAX, 17 + i)
            asm.mov(M(None, disp=OUT + 16 + 4 * i), EAX)
        asm.exit(0)
        return asm.program()
    return build


def _body_daxpy(asm):
    """bwaves-style: dense vector update."""
    asm.fmul(F0, F1)
    asm.fadd(F0, F1)
    asm.fst(M(EDI, ESI, 8), F0)
    asm.fadd(F7, F0)


def _body_su3(asm):
    """milc-style: small complex-matrix multiply chain."""
    asm.fmov(F2, F0)
    asm.fmul(F2, F1)
    asm.fmov(F3, F0)
    asm.fadd(F3, F1)
    asm.fmul(F3, F3)
    asm.fsub(F3, F2)
    asm.fadd(F7, F3)


def _body_stencil(asm):
    """zeusmp/leslie3d-style: neighbour stencil."""
    asm.fld(F2, M(EBP, ESI, 8, disp=8))
    asm.fadd(F2, F0)
    asm.fld(F3, M(EBP, ESI, 8, disp=16))
    asm.fadd(F2, F3)
    asm.fmul(F2, F1)
    asm.fst(M(EDI, ESI, 8), F2)
    asm.fadd(F7, F2)


def _body_force(asm):
    """gromacs/namd-style: pairwise force with rsqrt flavour."""
    asm.fmov(F2, F0)
    asm.fmul(F2, F2)
    asm.fmov(F3, F1)
    asm.fmul(F3, F3)
    asm.fadd(F2, F3)          # r^2
    asm.fsqrt(F2)             # r
    asm.fmov(F3, F1)
    asm.fdiv(F3, F2)          # 1/r scaled
    asm.fadd(F7, F3)


def _body_wave(asm):
    """cactusADM/GemsFDTD-style: weighted neighbour update."""
    asm.fld(F2, M(EBX, ESI, 8, disp=8))
    asm.fmov(F3, F0)
    asm.fmul(F3, F1)
    asm.fadd(F3, F2)
    asm.fmov(F4, F3)
    asm.fmul(F4, F0)
    asm.fsub(F4, F1)
    asm.fst(M(EDI, ESI, 8), F4)
    asm.fadd(F7, F4)


def _body_lattice(asm):
    """lbm-style: collision operator with many FP ops per point."""
    asm.fmov(F2, F0)
    asm.fadd(F2, F1)
    asm.fmov(F3, F0)
    asm.fsub(F3, F1)
    asm.fmul(F2, F3)
    asm.fmov(F4, F2)
    asm.fmul(F4, F0)
    asm.fadd(F4, F1)
    asm.fmov(F5, F4)
    asm.fmul(F5, F5)
    asm.fadd(F7, F5)
    asm.fst(M(EDI, ESI, 8), F5)


bwaves = register("410.bwaves", SPECFP, "dense linear-solver update")(
    _fp_kernel("bwaves", 410, _body_daxpy, base_iters=75))
milc = register("433.milc", SPECFP, "SU(3) lattice QCD multiply chains")(
    _fp_kernel("milc", 433, _body_su3, base_iters=62))
zeusmp = register("434.zeusmp", SPECFP, "magnetohydrodynamics stencil")(
    _fp_kernel("zeusmp", 434, _body_stencil, base_iters=55))
gromacs = register("435.gromacs", SPECFP, "molecular force inner loop")(
    _fp_kernel("gromacs", 435, _body_force, base_iters=52))
cactus = register("436.cactusADM", SPECFP, "Einstein-equation update")(
    _fp_kernel("cactusADM", 436, _body_wave, base_iters=52))
leslie = register("437.leslie3d", SPECFP, "finite-volume fluid stencil")(
    _fp_kernel("leslie3d", 437, _body_stencil, base_iters=58))
namd = register("444.namd", SPECFP, "biomolecular pairwise forces")(
    _fp_kernel("namd", 444, _body_force, base_iters=57))
gems = register("459.GemsFDTD", SPECFP, "FDTD electromagnetic update")(
    _fp_kernel("GemsFDTD", 459, _body_wave, base_iters=50))
lbm = register("470.lbm", SPECFP, "lattice-Boltzmann collision")(
    _fp_kernel("lbm", 470, _body_lattice, base_iters=55))


@register("450.soplex", SPECFP,
          "simplex pivoting: FP ratio tests with integer bookkeeping")
def soplex(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 512
    asm.data(A, f64_table(450, n, 0.5, 4.0))
    asm.data(B, f64_table(451, n, 0.5, 4.0))
    iters = scaled(58, scale)
    asm.fldi(F7, 0)
    asm.mov(EDI, 0)
    asm.mov(EBP, A)
    asm.mov(EBX, B)
    with asm.counted_loop(EDX, iters):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.fld(F0, M(EBP, ESI, 8))
            asm.fld(F1, M(EBX, ESI, 8))
            asm.fmov(F2, F0)
            asm.fdiv(F2, F1)            # ratio test
            asm.fcmp(F2, F0)
            asm.jb("no_pivot")          # biased
            asm.inc(EDI)
            asm.fadd(F7, F2)
            asm.label("no_pivot")
            asm.fadd(F7, F1)
            asm.inc(ESI)
    asm.fst(M(None, disp=OUT), F7)
    asm.mov(M(None, disp=OUT + 8), EDI)
    emit_warm_code(asm, 3, 46, 450)
    asm.exit(0)
    return asm.program()


@register("453.povray", SPECFP,
          "ray-sphere intersections with normal rotation (some trig)")
def povray(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 256
    asm.data(A, f64_table(453, n, -1.0, 1.0))
    asm.data(B, f64_table(454, n, 0.1, 3.0))
    rays = scaled(40, scale)
    asm.fldi(F7, 0)
    asm.mov(EBP, A)
    asm.mov(EBX, B)
    with asm.counted_loop(EDX, rays):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.fld(F0, M(EBP, ESI, 8))
            asm.fld(F1, M(EBX, ESI, 8))
            asm.fmov(F2, F0)
            asm.fmul(F2, F2)
            asm.fmov(F3, F1)
            asm.fmul(F3, F3)
            asm.fadd(F2, F3)
            asm.fsqrt(F2)                # discriminant
            # every 8th ray rotates the hit normal (trig)
            asm.mov(EAX, ESI)
            asm.emit("AND", EAX, 7)
            asm.jne("no_rotate")
            asm.fmov(F4, F0)
            asm.fsin(F4)
            asm.fadd(F2, F4)
            asm.label("no_rotate")
            asm.fadd(F7, F2)
            asm.inc(ESI)
    asm.fst(M(None, disp=OUT), F7)
    emit_warm_code(asm, 3, 46, 453)
    asm.exit(0)
    return asm.program()


@register("454.calculix", SPECFP,
          "finite-element stiffness accumulation (dot products)")
def calculix(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 512
    asm.data(A, f64_table(455, n, 0.1, 1.5))
    asm.data(B, f64_table(456, n, 0.1, 1.5))
    iters = scaled(57, scale)
    asm.fldi(F7, 0)
    with asm.counted_loop(EDX, iters):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n // 2):
            # Unrolled-by-2 dot product: long BBs.
            asm.fld(F0, M(None, ESI, 8, disp=A))
            asm.fld(F1, M(None, ESI, 8, disp=B))
            asm.fmul(F0, F1)
            asm.fadd(F7, F0)
            asm.fld(F2, M(EBP, ESI, 8, disp=8))
            asm.fld(F3, M(None, ESI, 8, disp=B + 8))
            asm.fmul(F2, F3)
            asm.fadd(F7, F2)
            asm.add(ESI, 2)
    asm.fst(M(None, disp=OUT), F7)
    asm.exit(0)
    return asm.program()


@register("482.sphinx3", SPECFP,
          "acoustic model scoring: gaussian products with flooring")
def sphinx3(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 384
    asm.data(A, f64_table(482, n, -2.0, 2.0))
    asm.data(B, f64_table(483, n, 0.2, 2.0))
    frames = scaled(60, scale)
    asm.fldi(F7, 0)
    asm.fldi(F6, -4)            # score floor
    asm.mov(EBP, A)
    asm.mov(EBX, B)
    with asm.counted_loop(EDX, frames):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.fld(F0, M(EBP, ESI, 8))     # obs - mean
            asm.fld(F1, M(EBX, ESI, 8))     # inv variance
            asm.fmov(F2, F0)
            asm.fmul(F2, F0)
            asm.fmul(F2, F1)
            asm.fneg(F2)
            asm.fcmp(F2, F6)
            asm.ja("no_floor")           # biased: rarely floored
            asm.fmov(F2, F6)
            asm.label("no_floor")
            asm.fadd(F7, F2)
            asm.inc(ESI)
    asm.fst(M(None, disp=OUT), F7)
    asm.exit(0)
    return asm.program()
