"""Long-running, syscall-punctuated workloads (the "Longrun" suite).

The paper-suite kernels make exactly one syscall (the final exit), so a
checkpointing run of them has no mid-run synchronization boundary to
snapshot at.  These workloads model long batch jobs that emit periodic
progress output: every outer iteration ends in a ``SYS_WRITE`` (and, for
``blend``, a few other syscalls), so validation epochs — and therefore
checkpoints — land throughout the run.  They are the natural subjects
for ``darco sweep --arch --checkpoint-dir`` and the kill/resume CI job.

They are intentionally NOT part of :data:`repro.workloads.SUITES`: the
paper's figures aggregate the SPEC/Physicsbench suites only.
"""

from __future__ import annotations

from repro.guest.asmtext import assemble_text
from repro.guest.program import GuestProgram
from repro.workloads.common import register, scaled

LONGRUN = "Longrun"


@register("ticker", LONGRUN,
          "hot integer loop with a progress write per outer iteration")
def build_ticker(scale: float = 1.0) -> GuestProgram:
    outer = scaled(30, scale, 6)
    inner = scaled(120, scale, 40)
    return assemble_text(f"""
        mov esi, 0
        mov ebp, {outer}
    outer:
        mov ecx, {inner}
    inner:
        imul esi, 3
        add esi, ecx
        xor esi, 0x1f
        mov [0x9100], esi
        mov edx, [0x9100]
        add esi, edx
        dec ecx
        jne inner
        mov eax, 2
        mov ecx, 0x9000
        mov edx, 4
        syscall
        dec ebp
        jne outer
        mov eax, 1
        mov ebx, 0
        syscall
        .data 0x9000 u32 0x2e2e2e2e
    """)


@register("blend", LONGRUN,
          "int/fp/string mix with several syscalls per outer iteration")
def build_blend(scale: float = 1.0) -> GuestProgram:
    outer = scaled(16, scale, 5)
    inner = scaled(60, scale, 25)
    return assemble_text(f"""
        mov ebp, {outer}
        fldi f0, 1
        fldi f1, 3
    outer:
        mov ecx, {inner}
    inner:
        fadd f0, f1
        fmul f0, f1
        fsqrt f0
        fst [0x9200], f0
        fld f2, [0x9200]
        fadd f0, f2
        dec ecx
        jne inner
        mov esi, 0x9000
        mov edi, 0x9400
        mov ecx, 8
        rep_movsd
        mov eax, 6
        syscall
        mov [0x9300], eax
        mov eax, 5
        syscall
        mov eax, 2
        mov ecx, 0x9300
        mov edx, 4
        syscall
        dec ebp
        jne outer
        mov eax, 1
        mov ebx, 0
        syscall
        .data 0x9000 u32 0x2b2b2b2b 2 3 4 5 6 7 8
    """)
