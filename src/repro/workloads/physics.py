"""Physicsbench-shaped kernels (Yeh et al., "Parallax", ISCA 2007).

Real-time physics: heavy use of trigonometry (rotations), scalar FP, and —
crucially for the paper's evaluation — a *low dynamic-to-static instruction
ratio*: scenes contain many distinct object-update routines, each executed
for only a few simulated frames.  This keeps a large share of the dynamic
stream in IM/BBM (translation overhead is not amortized, Fig. 4/6/7) and
software-emulated trig raises the SBM emulation cost (Fig. 5).
"""

from __future__ import annotations

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EBP, ESI, EDI,
    F0, F1, F2, F3, F4, F5, F6, F7, M,
)
from repro.guest.program import GuestProgram
from repro.workloads.common import (
    PHYSICS, DeterministicRng, f64_table, register, scaled,
)

POS = 0x0030_0000
VEL = 0x0034_0000
ANG = 0x0038_0000
OUT = 0x003C_0000


def _object_update(asm, index: int, rng: DeterministicRng,
                   trig_heavy: bool) -> None:
    """Emit one distinct rigid-body update function ``objN``.

    Each object's routine is unique code (different operation mix and
    constants): this is what creates Physicsbench's large static footprint.
    """
    asm.label(f"obj{index}")
    offset = 8 * (index % 64)
    asm.fld(F0, M(None, disp=POS + offset))
    asm.fld(F1, M(None, disp=VEL + offset))
    asm.fadd(F0, F1)                        # integrate position
    if trig_heavy and index % 3 == 0:
        asm.fld(F2, M(None, disp=ANG + offset))
        if index % 2 == 0:
            asm.fsin(F2)
        else:
            asm.fcos(F2)
        asm.fmul(F1, F2)                    # rotate velocity component
    variant = rng.u32(0, 3)
    if variant == 0:
        asm.fmov(F3, F1)
        asm.fmul(F3, F3)
        asm.fadd(F0, F3)
    elif variant == 1:
        asm.fldi(F3, rng.u32(1, 5))
        asm.fdiv(F1, F3)                    # damping
    elif variant == 2:
        asm.fabs(F1)
        asm.fneg(F1)
    else:
        asm.fmov(F3, F0)
        asm.fsqrt(F3)
        asm.fadd(F0, F3)
    # Ground collision check (biased: mostly no bounce).
    asm.fldi(F4, -100)
    asm.fcmp(F0, F4)
    asm.ja(f"obj{index}_ok")
    asm.fneg(F1)
    asm.label(f"obj{index}_ok")
    asm.fst(M(None, disp=POS + offset), F0)
    asm.fst(M(None, disp=VEL + offset), F1)
    asm.ret()


def _physics_scene(seed: int, objects: int, steps: int,
                   trig_heavy: bool = True, hot_particles: int = 0,
                   warm_objects: int = 0):
    """Template: per-frame loop calling every object's unique routine,
    plus an optional shared hot particle loop.  ``warm_objects`` adds
    routines invoked only every 8th frame (they settle in BBM: the
    translation-overhead tail the paper attributes Physicsbench's high
    TOL overhead to)."""
    def build(scale: float = 1.0) -> GuestProgram:
        asm = Assembler()
        rng = DeterministicRng(seed)
        asm.data(POS, f64_table(seed, 64, -5.0, 5.0))
        asm.data(VEL, f64_table(seed + 1, 64, -1.0, 1.0))
        asm.data(ANG, f64_table(seed + 2, 64, -3.0, 3.0))
        n_steps = scaled(steps, scale)
        asm.mov(EBP, 0)     # frame counter
        with asm.counted_loop(EDX, n_steps):
            for i in range(objects):
                asm.call(f"obj{i}")
            if warm_objects:
                asm.mov(EAX, EBP)
                asm.emit("AND", EAX, 7)
                asm.jne("skip_warm_frame")
                for i in range(objects, objects + warm_objects):
                    asm.call(f"obj{i}")
                asm.label("skip_warm_frame")
            asm.inc(EBP)
            if hot_particles:
                asm.mov(ESI, 0)
                with asm.counted_loop(ECX, hot_particles):
                    asm.mov(EAX, ESI)
                    asm.emit("AND", EAX, 63)
                    asm.fld(F0, M(None, EAX, 8, disp=POS))
                    asm.fld(F1, M(None, EAX, 8, disp=VEL))
                    asm.fadd(F0, F1)
                    asm.fst(M(None, EAX, 8, disp=POS), F0)
                    asm.inc(ESI)
        asm.fld(F7, M(None, disp=POS))
        asm.fst(M(None, disp=OUT), F7)
        asm.exit(0)
        rng2 = DeterministicRng(seed + 7)
        for i in range(objects + warm_objects):
            _object_update(asm, i, rng2, trig_heavy)
        return asm.program()
    return build


breakable = register(
    "breakable", PHYSICS,
    "fracturing bodies: moderate object count, fragment loop")(
    _physics_scene(7001, objects=24, steps=420, hot_particles=64,
                   warm_objects=40))
continuous = register(
    "continuous", PHYSICS,
    "continuous collision detection: many unique routines, few frames")(
    _physics_scene(7002, objects=48, steps=150))
deformable = register(
    "deformable", PHYSICS,
    "soft-body mesh: shared mass-spring loop dominates")(
    _physics_scene(7003, objects=20, steps=400, hot_particles=96,
                   warm_objects=32))
explosions = register(
    "explosions", PHYSICS,
    "debris shower: particle integration plus per-debris routines")(
    _physics_scene(7004, objects=28, steps=380, hot_particles=80,
                   warm_objects=44))
highspeed = register(
    "highspeed", PHYSICS,
    "fast projectiles: trig-heavy trajectory updates")(
    _physics_scene(7005, objects=24, steps=430, hot_particles=64,
                   warm_objects=40))
periodic = register(
    "periodic", PHYSICS,
    "periodic boundary scene: wide static code, very few frames")(
    _physics_scene(7006, objects=56, steps=140))
ragdoll = register(
    "ragdoll", PHYSICS,
    "articulated figures: many joint routines, few frames")(
    _physics_scene(7007, objects=48, steps=160))
