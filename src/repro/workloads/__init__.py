"""Workload suite: SPEC2006- and Physicsbench-shaped kernels plus a
parameterized synthetic generator."""

from repro.workloads import physics, specfp, specint  # noqa: F401 (register)
from repro.workloads.common import (
    PHYSICS, SPECFP, SPECINT, Workload, all_workloads, get_workload,
    suite_workloads,
)
from repro.workloads.generator import SyntheticSpec, generate, generate_quick

SUITES = (SPECINT, SPECFP, PHYSICS)

__all__ = [
    "PHYSICS", "SPECFP", "SPECINT", "SUITES", "Workload", "all_workloads",
    "get_workload", "suite_workloads", "SyntheticSpec", "generate",
    "generate_quick",
]
