"""Workload suite: SPEC2006- and Physicsbench-shaped kernels plus a
parameterized synthetic generator."""

from repro.workloads import (  # noqa: F401 (register)
    longrun, physics, specfp, specint,
)
from repro.workloads.common import (
    PHYSICS, SPECFP, SPECINT, Workload, all_workloads, get_workload,
    suite_workloads,
)
from repro.workloads.generator import SyntheticSpec, generate, generate_quick
from repro.workloads.longrun import LONGRUN

#: The paper's figure suites; the Longrun (checkpointing) workloads are
#: deliberately excluded from figure aggregation.
SUITES = (SPECINT, SPECFP, PHYSICS)

__all__ = [
    "LONGRUN", "PHYSICS", "SPECFP", "SPECINT", "SUITES", "Workload",
    "all_workloads", "get_workload", "suite_workloads", "SyntheticSpec",
    "generate", "generate_quick",
]
