"""Shared infrastructure for the workload suite.

Each workload is a :class:`Workload`: a named builder producing a guest
program whose *shape* (basic-block size, branch bias, dynamic/static
instruction ratio, FP/trig/vector density) mimics the corresponding
SPEC CPU2006 / Physicsbench benchmark (see DESIGN.md substitution table).
``scale`` controls dynamic instruction counts so experiments can trade
fidelity for wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.guest.program import GuestProgram, pack_f64s, pack_u32s

SPECINT = "SPECINT2006"
SPECFP = "SPECFP2006"
PHYSICS = "Physicsbench"

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 64) - 1


class DeterministicRng:
    """Tiny LCG so workload data is reproducible without the stdlib RNG."""

    def __init__(self, seed: int):
        self.state = (seed * 2654435761 + 1) & _MASK

    def next_u32(self) -> int:
        self.state = (self.state * _LCG_A + _LCG_C) & _MASK
        return (self.state >> 32) & 0xFFFFFFFF

    def u32(self, lo: int, hi: int) -> int:
        return lo + self.next_u32() % (hi - lo + 1)

    def f64(self, lo: float, hi: float) -> float:
        return lo + (self.next_u32() / 0xFFFFFFFF) * (hi - lo)


def u32_table(seed: int, n: int, lo: int = 0,
              hi: int = 0xFFFFFFFF) -> bytes:
    rng = DeterministicRng(seed)
    return pack_u32s([rng.u32(lo, hi) for _ in range(n)])


def f64_table(seed: int, n: int, lo: float = -1.0,
              hi: float = 1.0) -> bytes:
    rng = DeterministicRng(seed)
    return pack_f64s([rng.f64(lo, hi) for _ in range(n)])


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str
    build: Callable[[float], GuestProgram]
    #: one-line description of what the kernel models.
    description: str = ""

    def program(self, scale: float = 1.0) -> GuestProgram:
        return self.build(scale)


_REGISTRY: Dict[str, Workload] = {}


def register(name: str, suite: str, description: str = ""):
    """Decorator registering a workload builder."""
    def wrap(fn):
        _REGISTRY[name] = Workload(name=name, suite=suite, build=fn,
                                   description=description)
        return fn
    return wrap


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> List[Workload]:
    return list(_REGISTRY.values())


def suite_workloads(suite: str) -> List[Workload]:
    return [w for w in _REGISTRY.values() if w.suite == suite]


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(base * scale))


def emit_warm_code(asm, stanzas: int, execs: int, seed: int) -> None:
    """Emit ``stanzas`` distinct functions each called ``execs`` times.

    With default thresholds and execs between the BBM and SBM thresholds,
    this code settles in BBM: it models the lukewarm tail real applications
    have (SPEC's is proportionally small, Physicsbench's is large) and
    drives the IM/BBM shares of Fig. 4 and the translator overheads of
    Fig. 6/7.
    """
    from repro.guest.assembler import EAX, EBX, ECX, M
    rng = DeterministicRng(seed * 31 + 5)
    names = [f"warm{seed}_{i}" for i in range(stanzas)]
    for name in names:
        with asm.counted_loop(ECX, execs):
            asm.call(name)
    skip = asm.fresh_label("warm_skip")
    asm.jmp(skip)
    for i, name in enumerate(names):
        asm.label(name)
        asm.mov(EAX, rng.u32(1, 0xFFFF))
        asm.imul(EAX, rng.u32(3, 97))
        asm.emit("XOR", EAX, rng.u32(1, 0xFFFFFF))
        asm.mov(EBX, EAX)
        asm.shr(EBX, rng.u32(1, 9))
        asm.cmp(EBX, rng.u32(1, 0x7FFF))
        label = asm.fresh_label("warm_br")
        asm.jb(label)
        asm.add(EAX, EBX)
        asm.label(label)
        asm.ret()
    asm.label(skip)
