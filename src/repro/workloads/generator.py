"""Parameterized synthetic program generator.

Beyond the named suite, experiments (ablations, stress tests, property
tests) need programs with dial-a-characteristic shapes.  The generator
produces a guest program from a :class:`SyntheticSpec` controlling basic
block size, branch bias, loop trip counts, FP/trig/vector/memory density
and static code volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EBP, ESI, EDI, F0, F1, F2, V0, V1, M,
)
from repro.guest.program import GuestProgram
from repro.workloads.common import DeterministicRng, f64_table, u32_table

_DATA = 0x0040_0000
_FDATA = 0x0044_0000
_OUT = 0x0048_0000


@dataclass
class SyntheticSpec:
    seed: int = 1
    #: number of distinct hot loops.
    hot_loops: int = 2
    #: iterations per hot loop.
    trip_count: int = 2000
    #: straight-line ALU ops per loop body (controls BB size).
    bb_size: int = 6
    #: probability that the in-loop conditional goes the biased way.
    branch_bias: float = 0.9
    #: include a conditional branch inside each loop body.
    branchy: bool = True
    #: loads+stores per loop body.
    mem_ops: int = 1
    #: scalar FP ops per loop body.
    fp_ops: int = 0
    #: trig calls per loop body.
    trig_ops: int = 0
    #: vector ops per loop body.
    vec_ops: int = 0
    #: number of distinct once-executed cold code stanzas.
    cold_stanzas: int = 8


def generate(spec: SyntheticSpec) -> GuestProgram:
    """Build a program from a spec."""
    asm = Assembler()
    rng = DeterministicRng(spec.seed)
    asm.data(_DATA, u32_table(spec.seed, 1024))
    if spec.fp_ops or spec.trig_ops:
        asm.data(_FDATA, f64_table(spec.seed + 1, 256, -2.0, 2.0))

    asm.mov(EDI, 0)
    for loop_idx in range(spec.hot_loops):
        # Bias selector: EAX cycles 0..99; branch taken when below the
        # bias threshold.
        threshold = int(spec.branch_bias * 100)
        asm.mov(EBP, 0)
        with asm.counted_loop(ECX, spec.trip_count):
            for i in range(spec.bb_size):
                op = rng.u32(0, 3)
                if op == 0:
                    asm.add(EDI, rng.u32(1, 255))
                elif op == 1:
                    asm.emit("XOR", EDI, rng.u32(1, 0xFFFF))
                elif op == 2:
                    asm.shl(EDI, 1)
                else:
                    asm.sub(EDI, EBP)
            for i in range(spec.mem_ops):
                asm.mov(EAX, EBP)
                asm.emit("AND", EAX, 1023)
                if i % 2 == 0:
                    asm.mov(EBX, M(None, EAX, 4, disp=_DATA))
                    asm.add(EDI, EBX)
                else:
                    asm.mov(M(None, EAX, 4, disp=_DATA), EDI)
            for i in range(spec.fp_ops):
                asm.mov(EAX, EBP)
                asm.emit("AND", EAX, 255)
                asm.fld(F0, M(None, EAX, 8, disp=_FDATA))
                asm.fmul(F0, F0)
                asm.fadd(F1, F0)
            for _ in range(spec.trig_ops):
                asm.fsin(F1)
            for i in range(spec.vec_ops):
                asm.mov(EAX, EBP)
                asm.emit("AND", EAX, 255)
                asm.vld(V0, M(None, EAX, 4, disp=_DATA))
                asm.vadd(V0, V0)
            if spec.branchy:
                asm.mov(EAX, EBP)
                asm.mov(EBX, 100)
                asm.push(EDX)
                asm.push(EAX)
                asm.idiv(EBX)        # EAX//100, remainder in EDX
                asm.mov(EAX, EDX)
                asm.pop(EBX)
                asm.pop(EDX)
                asm.cmp(EAX, threshold)
                rare = asm.fresh_label("rare")
                asm.jae(rare)
                asm.inc(EDI)         # biased path
                done = asm.fresh_label("bias_done")
                asm.jmp(done)
                asm.label(rare)
                asm.emit("XOR", EDI, 0xFF)
                asm.label(done)
            asm.inc(EBP)
            asm.emit("AND", EDI, 0xFFFFFF)
    asm.mov(M(None, disp=_OUT), EDI)

    for i in range(spec.cold_stanzas):
        asm.mov(EAX, rng.u32(1, 0xFFFF))
        asm.imul(EAX, rng.u32(3, 99))
        asm.emit("XOR", EAX, rng.u32(1, 0xFFFF))
        asm.mov(M(None, disp=_OUT + 8 + 4 * i), EAX)
    asm.exit(0)
    return asm.program()


def generate_quick(seed: int = 1, guest_insns: int = 50_000,
                   **overrides) -> GuestProgram:
    """A convenience wrapper sized to roughly ``guest_insns``."""
    spec = SyntheticSpec(seed=seed)
    for key, value in overrides.items():
        setattr(spec, key, value)
    body = spec.bb_size + 2 * spec.mem_ops + 4 * spec.fp_ops \
        + spec.trig_ops + 2 * spec.vec_ops + (10 if spec.branchy else 0) + 4
    spec.trip_count = max(10, guest_insns // max(1, body * spec.hot_loops))
    return generate(spec)
