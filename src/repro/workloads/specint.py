"""SPECINT2006-shaped kernels.

Integer codes: small basic blocks, frequent (mostly biased) branches,
pointer/array traffic, high dynamic-to-static instruction ratio.  Per the
paper these characteristics put ~88% of the dynamic stream in SBM and make
branch emulation dominate the SBM emulation cost (~4 host/guest).
"""

from __future__ import annotations

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EBP, ESI, EDI, M,
)
from repro.guest.program import GuestProgram, pack_u32s
from repro.workloads.common import (
    SPECINT, emit_warm_code, register, scaled, u32_table,
)

DATA = 0x0010_0000
DATA2 = 0x0012_0000
DATA3 = 0x0014_0000
TABLE = 0x0016_0000
OUT = 0x0018_0000


def _cold_tail(asm, stanzas: int, seed: int) -> None:
    """Emit `stanzas` distinct once-executed code blocks (cold static
    code: keeps a realistic IM share and code footprint)."""
    from repro.workloads.common import DeterministicRng
    rng = DeterministicRng(seed)
    skip = asm.fresh_label("cold_end")
    for i in range(stanzas):
        asm.mov(EAX, rng.u32(1, 0xFFFF))
        asm.add(EAX, rng.u32(1, 0xFFFF))
        asm.emit("XOR", EAX, rng.u32(1, 0xFFFF))
        asm.shl(EAX, rng.u32(1, 7))
        asm.cmp(EAX, rng.u32(1, 0xFFFF))
        label = asm.fresh_label("cold")
        asm.jne(label)
        asm.inc(EDI)
        asm.label(label)
        asm.mov(M(None, disp=OUT + 64 + 4 * i), EAX)
    asm.label(skip)


@register("400.perlbench", SPECINT,
          "interpreter dispatch loop: jump table, hashing, string walk")
def perlbench(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n_ops = 8
    # Bytecode stream: opcode values 0..7.
    asm.data(DATA, u32_table(400, 512, 0, n_ops - 1))
    iters = scaled(9000, scale)
    # Jump table built at runtime (filled with handler addresses).
    asm.mov(ESI, 0)
    for i in range(n_ops):
        asm.mov(EAX, f"op{i}")
        asm.mov(M(None, disp=TABLE + 4 * i), EAX)
    asm.mov(EDI, 0)              # accumulator ("interpreter state")
    asm.mov(EBP, 0)              # bytecode pc
    with asm.counted_loop(ECX, iters):
        asm.mov(EAX, EBP)
        asm.emit("AND", EAX, 511)
        asm.mov(EBX, M(None, EAX, 4, disp=DATA))   # fetch opcode
        asm.mov(EDX, M(None, EBX, 4, disp=TABLE))  # handler address
        asm.inc(EBP)
        asm.jmpi(EDX)                              # indirect dispatch
        for i in range(n_ops):
            asm.label(f"op{i}")
            if i % 4 == 0:
                asm.add(EDI, EBP)
            elif i % 4 == 1:
                asm.emit("XOR", EDI, 0x9E3779B9)
                asm.shl(EDI, 1)
            elif i % 4 == 2:
                asm.sub(EDI, EBX)
            else:
                asm.imul(EDI, 33)
            asm.jmp("dispatch_done")
        asm.label("dispatch_done")
        asm.emit("AND", EDI, 0xFFFFFF)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 16, 48, 400)
    _cold_tail(asm, 24, 400)
    asm.exit(0)
    return asm.program()


@register("401.bzip2", SPECINT,
          "run-length + move-to-front compression over a data block")
def bzip2(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 256
    asm.data(DATA, u32_table(401, n, 0, 15))
    passes = scaled(55, scale)
    asm.mov(EDI, 0)
    with asm.counted_loop(EDX, passes):
        asm.mov(ESI, 0)          # index
        asm.mov(EBP, 0xFFFFFFFF)  # previous symbol (none)
        asm.mov(EBX, 0)          # run length
        with asm.counted_loop(ECX, n):
            asm.mov(EAX, M(None, ESI, 4, disp=DATA))
            asm.cmp(EAX, EBP)
            asm.jne("run_break")
            asm.inc(EBX)                     # extend run (taken rarely)
            asm.jmp("run_next")
            asm.label("run_break")
            asm.add(EDI, EBX)                # emit previous run
            asm.mov(EBX, 1)
            asm.mov(EBP, EAX)
            asm.label("run_next")
            asm.shl(EAX, 4)
            asm.emit("XOR", EDI, EAX)
            asm.emit("AND", EDI, 0xFFFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 14, 52, 401)
    _cold_tail(asm, 20, 401)
    asm.exit(0)
    return asm.program()


@register("403.gcc", SPECINT,
          "branchy decision trees over IR-like records, many functions")
def gcc(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 512
    asm.data(DATA, u32_table(403, n, 0, 0xFFFF))
    iters = scaled(40, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, iters):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.test(EAX, 1)
            asm.je("even")
            asm.call("fold_odd")
            asm.jmp("folded")
            asm.label("even")
            asm.call("fold_even")
            asm.label("folded")
            asm.add(EDI, EAX)
            asm.emit("AND", EDI, 0x3FFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 22, 44, 403)
    asm.exit(0)
    # Two mid-sized "pass" functions with internal branching.
    asm.label("fold_odd")
    asm.mov(EBX, EAX)
    asm.shr(EBX, 3)
    asm.cmp(EBX, 0x700)
    asm.jb("odd_small")
    asm.imul(EAX, 3)
    asm.ret()
    asm.label("odd_small")
    asm.add(EAX, EBX)
    asm.ret()
    asm.label("fold_even")
    asm.mov(EBX, EAX)
    asm.emit("AND", EBX, 0xFF)
    asm.cmp(EBX, 0x80)
    asm.jae("even_big")
    asm.emit("XOR", EAX, 0x5555)
    asm.ret()
    asm.label("even_big")
    asm.sub(EAX, EBX)
    asm.ret()
    return asm.program()


@register("429.mcf", SPECINT,
          "pointer chasing over a linked network (memory latency bound)")
def mcf(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 1024
    # next[] pointers forming one long cycle (pseudo-random permutation).
    from repro.workloads.common import DeterministicRng
    rng = DeterministicRng(429)
    order = list(range(n))
    for i in range(n - 1, 0, -1):
        j = rng.u32(0, i)
        order[i], order[j] = order[j], order[i]
    nxt = [0] * n
    for i in range(n):
        nxt[order[i]] = order[(i + 1) % n]
    asm.data(DATA, pack_u32s(nxt))
    asm.data(DATA2, u32_table(4290, n, 0, 1000))
    hops = scaled(45000, scale)
    asm.mov(ESI, 0)     # current node
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    asm.mov(EBX, DATA2)
    with asm.counted_loop(ECX, hops):
        asm.mov(EAX, M(EBX, ESI, 4))               # node cost
        asm.add(EDI, EAX)
        asm.cmp(EAX, 500)
        asm.jb("cheap")
        asm.sub(EDI, 7)
        asm.label("cheap")
        asm.mov(ESI, M(EBP, ESI, 4))               # follow pointer
        asm.emit("AND", EDI, 0xFFFFFF)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 18, 50, 429)
    _cold_tail(asm, 16, 429)
    asm.exit(0)
    return asm.program()


@register("445.gobmk", SPECINT,
          "board scan with neighbour tests (nested loops, biased branches)")
def gobmk(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    size = 19 * 19
    asm.data(DATA, u32_table(445, size, 0, 2))   # empty/black/white
    evals = scaled(130, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, evals):
        asm.mov(ESI, 19)                          # skip border row
        with asm.counted_loop(ECX, size - 40):
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.test(EAX, EAX)
            asm.je("empty_pt")                    # most points empty-ish
            asm.mov(EBX, M(EBP, ESI, 4, disp=-4))
            asm.cmp(EBX, EAX)
            asm.jne("no_chain")
            asm.add(EDI, 3)
            asm.label("no_chain")
            asm.add(EDI, EAX)
            asm.label("empty_pt")
            asm.inc(ESI)
            asm.emit("AND", EDI, 0x7FFFFF)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 15, 46, 445)
    _cold_tail(asm, 22, 445)
    asm.exit(0)
    return asm.program()


@register("458.sjeng", SPECINT,
          "game-tree node scoring: bit tricks, shifts, recursion-free "
          "minimax accumulation")
def sjeng(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 512
    asm.data(DATA, u32_table(458, n))
    iters = scaled(70, scale)
    asm.mov(EDI, 0x1234)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, iters):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.mov(EBX, EAX)
            asm.shr(EBX, 16)
            asm.emit("XOR", EAX, EBX)     # fold high into low
            asm.mov(EBX, EAX)
            asm.emit("AND", EBX, 0xF)
            asm.cmp(EBX, 7)
            asm.jbe("low_nibble")
            asm.neg(EAX)
            asm.label("low_nibble")
            asm.add(EDI, EAX)
            asm.sar(EDI, 1)
            asm.emit("AND", EDI, 0xFFFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 17, 50, 458)
    _cold_tail(asm, 18, 458)
    asm.exit(0)
    return asm.program()


@register("462.libquantum", SPECINT,
          "quantum register simulation: long uniform bit-toggle loops")
def libquantum(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 2048
    asm.data(DATA, u32_table(462, n))
    gates = scaled(28, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, gates):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            # Controlled-NOT style toggle: big BBs, one backward branch.
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.mov(EBX, EAX)
            asm.shr(EBX, 5)
            asm.emit("XOR", EAX, EBX)
            asm.shl(EAX, 1)
            asm.emit("OR", EAX, 1)
            asm.emit("XOR", EAX, 0xAAAAAAAA)
            asm.mov(M(EBP, ESI, 4), EAX)
            asm.add(EDI, EAX)
            asm.emit("AND", EDI, 0xFFFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 8, 54, 462)
    _cold_tail(asm, 10, 462)
    asm.exit(0)
    return asm.program()


@register("464.h264ref", SPECINT,
          "sum-of-absolute-differences motion search over 16x16 blocks")
def h264ref(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 1024
    asm.data(DATA, u32_table(464, n, 0, 255))
    asm.data(DATA2, u32_table(4641, n, 0, 255))
    searches = scaled(65, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, searches):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n - 16):
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.mov(EBX, M(EBP, ESI, 4, disp=DATA2 - DATA))
            asm.sub(EAX, EBX)
            asm.jns("positive")
            asm.neg(EAX)
            asm.label("positive")
            asm.add(EDI, EAX)
            asm.emit("AND", EDI, 0xFFFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 15, 50, 464)
    _cold_tail(asm, 20, 464)
    asm.exit(0)
    return asm.program()


@register("471.omnetpp", SPECINT,
          "discrete event simulation: binary-heap pop/push of timestamps")
def omnetpp(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    heap_n = 256
    asm.data(DATA, u32_table(471, heap_n, 1, 0xFFFFF))
    events = scaled(5200, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, events):
        # Sift-down from the root of a fixed-size "heap".
        asm.mov(ESI, 0)
        loop_top = asm.fresh_label("sift")
        done = asm.fresh_label("sift_done")
        asm.label(loop_top)
        asm.mov(EAX, ESI)
        asm.shl(EAX, 1)
        asm.inc(EAX)                       # left child
        asm.cmp(EAX, heap_n)
        asm.jae(done)
        asm.mov(EBX, M(EBP, ESI, 4))
        asm.mov(ECX, M(EBP, EAX, 4))
        asm.cmp(ECX, EBX)
        asm.jae(done)                      # heap property holds
        asm.mov(M(EBP, ESI, 4), ECX)
        asm.mov(M(EBP, EAX, 4), EBX)
        asm.mov(ESI, EAX)
        asm.jmp(loop_top)
        asm.label(done)
        # Re-insert a new timestamp at the root.
        asm.mov(EAX, M(EBP))
        asm.imul(EAX, 1103515245)
        asm.add(EAX, 12345)
        asm.emit("AND", EAX, 0xFFFFF)
        asm.emit("OR", EAX, 1)
        asm.mov(M(EBP), EAX)
        asm.add(EDI, EAX)
        asm.emit("AND", EDI, 0xFFFFFF)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 18, 46, 471)
    _cold_tail(asm, 24, 471)
    asm.exit(0)
    return asm.program()


@register("473.astar", SPECINT,
          "grid path scan: neighbour cost compares, bounded updates")
def astar(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 1024
    asm.data(DATA, u32_table(473, n, 0, 9999))
    sweeps = scaled(68, scale)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, sweeps):
        asm.mov(ESI, 1)
        with asm.counted_loop(ECX, n - 2):
            asm.mov(EAX, M(EBP, ESI, 4))                   # cell cost
            asm.mov(EBX, M(EBP, ESI, 4, disp=-4))          # west
            asm.add(EBX, 10)
            asm.cmp(EBX, EAX)
            asm.jae("no_relax")                            # mostly holds
            asm.mov(M(EBP, ESI, 4), EBX)
            asm.inc(EDI)
            asm.label("no_relax")
            asm.add(EDI, EAX)
            asm.emit("AND", EDI, 0xFFFFFF)
            asm.inc(ESI)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 15, 50, 473)
    _cold_tail(asm, 18, 473)
    asm.exit(0)
    return asm.program()


@register("483.xalancbmk", SPECINT,
          "tree transform: type-dispatched node visits via call table")
def xalancbmk(scale: float = 1.0) -> GuestProgram:
    asm = Assembler()
    n = 512
    n_types = 4
    asm.data(DATA, u32_table(483, n, 0, n_types - 1))
    visits = scaled(38, scale)
    for t in range(n_types):
        asm.mov(EAX, f"visit{t}")
        asm.mov(M(None, disp=TABLE + 4 * t), EAX)
    asm.mov(EDI, 0)
    asm.mov(EBP, DATA)
    with asm.counted_loop(EDX, visits):
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, n):
            asm.mov(EAX, M(EBP, ESI, 4))               # node type
            asm.mov(EBX, M(None, EAX, 4, disp=TABLE))
            asm.calli(EBX)                             # virtual dispatch
            asm.inc(ESI)
            asm.emit("AND", EDI, 0xFFFFFF)
    asm.mov(M(None, disp=OUT), EDI)
    emit_warm_code(asm, 19, 44, 483)
    asm.exit(0)
    for t in range(n_types):
        asm.label(f"visit{t}")
        if t == 0:
            asm.add(EDI, 17)
        elif t == 1:
            asm.emit("XOR", EDI, 0x33CC33CC)
        elif t == 2:
            asm.imul(EDI, 5)
        else:
            asm.shr(EDI, 1)
            asm.add(EDI, ESI)
        asm.ret()
    return asm.program()
