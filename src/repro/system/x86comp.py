"""The x86 component (paper §V).

A full-system functional emulator for the guest ISA: runs the unmodified
binary, executes all system calls, and keeps the *authoritative*
architectural and memory state that the co-designed component is validated
against.  A process tracker (modelled after the CR3-based tracker in the
paper) identifies the traced process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.guest.emulator import GuestEmulator
from repro.guest.program import GuestProgram
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS


@dataclass
class ProcessTracker:
    """Identifies the application's address space (the paper uses the CR3
    value; we model a synthetic address-space id)."""

    asid: int
    entry_pc: int
    launched: bool = False

    @classmethod
    def for_program(cls, program: GuestProgram) -> "ProcessTracker":
        # A deterministic ASID derived from the image identity.
        asid = (program.base ^ (program.entry << 1)) & 0xFFFFF000
        return cls(asid=asid or 0x1000, entry_pc=program.entry)


class X86Component:
    """Authoritative guest executor."""

    def __init__(self, program: GuestProgram, os: Optional[GuestOS] = None):
        self.program = program
        self.emulator = GuestEmulator(program, os=os)
        self.tracker = ProcessTracker.for_program(program)

    @property
    def state(self) -> GuestState:
        return self.emulator.state

    @property
    def memory(self):
        return self.emulator.memory

    @property
    def os(self) -> GuestOS:
        return self.emulator.os

    @property
    def icount(self) -> int:
        return self.emulator.icount

    def launch(self) -> GuestState:
        """Model the EXECVE pause: initialize the tracker and export the
        initial architectural state (paper §V-A, Initialization)."""
        self.tracker.launched = True
        return self.state.copy()

    def run_to_icount(self, target: int) -> None:
        """Catch up to the co-designed component's execution point."""
        self.emulator.run_to_icount(target)

    def at_syscall(self) -> bool:
        instr = self.emulator.current_instr()
        return instr.mnemonic == "SYSCALL"

    def execute_syscall(self) -> None:
        """Execute the system call the co-designed component paused at."""
        if not self.at_syscall():
            raise RuntimeError(
                f"x86 component not at a syscall "
                f"(eip={self.state.eip:#x}); components diverged")
        self.emulator.step()

    def export_page(self, page: int) -> bytes:
        return self.memory.export_page(page)
