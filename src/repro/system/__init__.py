"""System orchestration: controller, co-designed and x86 components."""

from repro.system.codesigned import CoDesignedComponent
from repro.system.controller import (
    Controller, RunResult, ValidationError, run_codesigned,
)
from repro.system.x86comp import ProcessTracker, X86Component

__all__ = [
    "CoDesignedComponent", "Controller", "RunResult", "ValidationError",
    "run_codesigned", "ProcessTracker", "X86Component",
]
