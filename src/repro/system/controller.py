"""The DARCO controller (paper §V, Fig. 2).

Main user interface: starts both components, runs the Initialization /
Execution / Synchronization protocol, resolves data requests and system
calls, and validates the co-designed component's emulated state against the
x86 component's authoritative state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.guest.encoding import EncodingError
from repro.guest.memory import PAGE_SHIFT
from repro.host.emulator import HostEmulationError
from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.tol.config import TolConfig
from repro.tol.decoder import Frontend
from repro.tol.tol import (
    EVENT_DATA_REQUEST, EVENT_END, EVENT_PAUSE, EVENT_SYSCALL,
)
from repro.system.codesigned import CoDesignedComponent
from repro.system.x86comp import X86Component
from repro.telemetry import TelemetrySnapshot
from repro.telemetry.collectors import register_controller_collector

#: Validation-gap histogram buckets (guest instructions between
#: consecutive validations — the amortization the ``validate_min_icount_gap``
#: knob controls).
VALIDATE_GAP_BOUNDS = (10, 100, 1_000, 10_000, 100_000, 1_000_000)


class ValidationError(Exception):
    """Emulated and authoritative states diverged: a translation bug."""

    def __init__(self, message: str, state_diff: Optional[dict] = None,
                 memory_diff=None, guest_icount: int = 0):
        super().__init__(message)
        self.state_diff = state_diff or {}
        self.memory_diff = memory_diff
        self.guest_icount = guest_icount


class SystemError_(Exception):
    """Protocol-level failure (lost synchronization, runaway program)."""


@dataclass
class RunResult:
    exit_code: Optional[int]
    guest_icount: int
    syscalls: int = 0
    data_requests: int = 0
    validations: int = 0
    stdout: bytes = b""
    #: Resilience counters (``recovery_mode="recover"``): total incidents
    #: recorded by the TOL's incident log, and how many divergence
    #: recoveries (state resyncs from the authoritative component) the
    #: controller performed.
    incidents: int = 0
    recoveries: int = 0
    #: Metrics snapshot taken at the end of the run (``None`` when the
    #: ``telemetry`` config mode is ``off``).
    telemetry: Optional[TelemetrySnapshot] = None


class Controller:
    """Orchestrates one application run across both components."""

    def __init__(self, program: GuestProgram,
                 config: Optional[TolConfig] = None,
                 os: Optional[GuestOS] = None,
                 frontend: Optional[Frontend] = None,
                 validate: bool = True):
        self.program = program
        self.config = config if config is not None else TolConfig()
        self.x86 = X86Component(program, os=os)
        self.codesigned = CoDesignedComponent(config=self.config,
                                              frontend=frontend)
        self.validate = validate
        #: Shared telemetry hub — the TOL owns it; the controller adds
        #: its synchronization-protocol collector and stamps snapshots
        #: onto run results.
        self.telemetry = self.codesigned.tol.telemetry
        register_controller_collector(self.telemetry, self)
        self.validations = 0
        self.syscall_events = 0
        self._sync_events = 0
        self._last_validated_icount = 0
        self._initialized = False
        #: ``recover`` mode: on divergence, resync the co-designed state
        #: from the authoritative x86 state, quarantine the implicated
        #: translations and continue (``strict``, the default, raises).
        self.recover = self.config.recovery_mode == "recover"
        self.recoveries = 0
        # Checkpoint/repro wiring (armed per-run by :meth:`run`).
        self._checkpoint_store = None
        self._checkpoint_every = 1
        self._repro_dir = None
        #: Path of the most recent repro bundle this run emitted.
        self.last_bundle_path = None

    # -- phase 1: Initialization ------------------------------------------------

    def initialize(self) -> None:
        initial = self.x86.launch()
        self.codesigned.receive_initial_state(initial)
        self._initialized = True

    # -- phase 2/3: Execution + Synchronization ----------------------------------

    def run(self, max_events: Optional[int] = None,
            until_icount: Optional[int] = None,
            checkpoint_every: int = 1,
            checkpoint_dir=None,
            repro_dir=None) -> RunResult:
        """Run the application to completion (or pause at
        ``until_icount``); returns the run result (``exit_code`` is None
        for a paused run).  ``max_events`` overrides the configured
        ``event_budget``.

        ``checkpoint_dir`` arms checkpointing: a resumable snapshot of
        the full tri-component state is written at every
        ``checkpoint_every``-th synchronization boundary (post-syscall,
        where validation also runs).  ``repro_dir`` arms repro-bundle
        emission: every divergence recovery, any run that ends with
        incidents, and any uncaught controller exception writes a
        self-contained bundle there (replayable with ``darco repro``)."""
        if checkpoint_dir is not None:
            from repro.snapshot.checkpoint import CheckpointStore
            self._checkpoint_store = CheckpointStore(checkpoint_dir)
            self._checkpoint_every = max(1, int(checkpoint_every))
        self._repro_dir = repro_dir
        try:
            return self._run(max_events, until_icount)
        except Exception as exc:
            self._emit_bundle("exception",
                              error=f"{type(exc).__name__}: {exc}")
            raise

    def _run(self, max_events: Optional[int],
             until_icount: Optional[int]) -> RunResult:
        if not self._initialized:
            self.initialize()
        budget = max_events if max_events is not None \
            else self.config.event_budget
        self.codesigned.tol.pause_at_icount = until_icount
        events = 0
        while events < budget:
            events += 1
            try:
                event = self.codesigned.run()
            except (EncodingError, ZeroDivisionError,
                    HostEmulationError) as exc:
                # Corrupted translations can steer the co-designed
                # component into data (undecodable bytes), into faulting
                # arithmetic, or into a host-level infinite loop (fuel
                # exhaustion).  In recover mode that is just another
                # detected divergence; strict mode propagates.
                if not self.recover:
                    raise
                kind = ("livelock" if isinstance(exc, HostEmulationError)
                        else "guest_error")
                self.x86.run_to_icount(self.codesigned.guest_icount)
                self._recover_divergence(kind, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "codesigned_eip": self.codesigned.state.eip,
                })
                if self.x86.os.exited:
                    return self._finish()
                continue
            if event.kind == EVENT_PAUSE:
                return self._paused_result()
            if event.kind == EVENT_DATA_REQUEST:
                self._serve_data_request(event.fault_addr)
            elif event.kind == EVENT_SYSCALL:
                finished = self._serve_syscall()
                if finished:
                    return self._finish()
            elif event.kind == EVENT_END:
                return self._finish()
            else:
                raise SystemError_(f"unknown TOL event {event.kind!r}")
        raise SystemError_(self._runaway_diagnostic(budget))

    def _runaway_diagnostic(self, budget: int) -> str:
        """A debuggable snapshot for budget exhaustion: where execution
        was spinning, in which modes, and how speculation was behaving."""
        tol = self.codesigned.tol
        lines = [
            f"event budget exhausted ({budget} events); "
            f"runaway application?",
            f"  guest_icount={self.codesigned.guest_icount} "
            f"syscalls={self.syscall_events} "
            f"data_requests={self.codesigned.data_requests} "
            f"validations={self.validations}",
            f"  eip={self.codesigned.state.eip:#x} "
            f"mode_distribution={tol.mode_distribution()}",
            f"  recent_dispatches={tol.recent_dispatches()}",
            f"  assert_failures={tol.stats.assert_failures} "
            f"spec_failures={tol.stats.spec_failures} "
            f"demotions={tol.stats.demotions} "
            f"watchdog_fires={tol.stats.watchdog_fires}",
            f"  incidents={len(tol.incidents)} "
            f"quarantined={len(tol.quarantine)}",
        ]
        return "\n".join(lines)

    # -- synchronization handlers ---------------------------------------------

    def _serve_data_request(self, fault_addr: int) -> None:
        """Ship the requested page at the co-designed execution point."""
        page = fault_addr >> PAGE_SHIFT
        self.x86.run_to_icount(self.codesigned.guest_icount)
        self.codesigned.install_page(page, self.x86.export_page(page))

    def _serve_syscall(self) -> bool:
        """Execute a system call in the x86 component; returns True when
        the application exited."""
        self.x86.run_to_icount(self.codesigned.guest_icount)
        if not self.x86.at_syscall():
            # Control-flow divergence: the co-designed component reached a
            # (bogus) SYSCALL the authoritative stream is not at.
            if self.recover:
                self._recover_divergence("sync_lost", {
                    "x86_eip": self.x86.state.eip,
                    "codesigned_eip": self.codesigned.state.eip,
                })
                # No syscall happened; resume from the resync point —
                # unless the authoritative run already finished.
                return self.x86.os.exited
            raise SystemError_(
                f"synchronization lost: x86 at {self.x86.state.eip:#x} "
                f"is not at a SYSCALL")
        self.syscall_events += 1
        self._sync_events += 1
        if self._should_validate():
            self._validate_states()
        self.x86.memory.clear_dirty()
        self.x86.execute_syscall()
        self.codesigned.receive_syscall_result(
            self.x86.state, set(self.x86.memory.dirty),
            self.x86.export_page)
        if (self._checkpoint_store is not None
                and not self.x86.os.exited
                and self._sync_events % self._checkpoint_every == 0):
            # Post-syscall sync point: both components agree on state and
            # retirement count — the resume-safe boundary.
            with self.telemetry.span(
                    "checkpoint", "controller",
                    icount=self.codesigned.guest_icount):
                self._checkpoint_store.write(self)
        return self.x86.os.exited

    def _paused_result(self) -> RunResult:
        return RunResult(
            exit_code=None,
            guest_icount=self.codesigned.guest_icount,
            syscalls=self.syscall_events,
            data_requests=self.codesigned.data_requests,
            validations=self.validations,
            stdout=bytes(self.x86.os.stdout),
            incidents=len(self.codesigned.tol.incidents),
            recoveries=self.recoveries,
            telemetry=self.telemetry.snapshot(),
        )

    def _finish(self) -> RunResult:
        """End of application: final synchronization and validation."""
        self.x86.run_to_icount(self.codesigned.guest_icount)
        if self.validate:
            self._validate_states(final=True)
        if len(self.codesigned.tol.incidents):
            self._emit_bundle("incidents")
        os = self.x86.os
        return RunResult(
            exit_code=os.exit_code,
            guest_icount=self.codesigned.guest_icount,
            syscalls=self.syscall_events,
            data_requests=self.codesigned.data_requests,
            validations=self.validations,
            stdout=bytes(os.stdout),
            incidents=len(self.codesigned.tol.incidents),
            recoveries=self.recoveries,
            telemetry=self.telemetry.snapshot(),
        )

    # -- validation ----------------------------------------------------------------

    def _should_validate(self) -> bool:
        """Validation epoch: every N sync events, and (optionally) only
        after enough guest instructions retired since the last comparison.
        Amortizes validation cost without weakening the contract — final
        validation in :meth:`_finish` always runs."""
        if not self.validate:
            return False
        every = self.config.validate_every
        if every <= 0 or self._sync_events % every != 0:
            return False
        gap = self.config.validate_min_icount_gap
        if gap > 0 and (self.codesigned.guest_icount
                        - self._last_validated_icount) < gap:
            return False
        return True

    def _validate_states(self, final: bool = False) -> None:
        """Compare emulated vs authoritative state (paper §V-D,
        Correctness).  In ``strict`` mode a mismatch raises; in
        ``recover`` mode it becomes an incident: the co-designed state is
        resynced from the authoritative state, the implicated
        translations are quarantined and execution continues."""
        with self.telemetry.span("validate", "controller",
                                 icount=self.codesigned.guest_icount,
                                 final=final):
            self._validate_states_inner(final)

    def _validate_states_inner(self, final: bool) -> None:
        self.validations += 1
        if self.telemetry.counters_on:
            self.telemetry.registry.histogram(
                "controller.validate.gap", bounds=VALIDATE_GAP_BOUNDS
            ).observe(self.codesigned.guest_icount
                      - self._last_validated_icount)
        self._last_validated_icount = self.codesigned.guest_icount
        mine = self.codesigned.state
        authoritative = self.x86.state
        diff = mine.diff(authoritative)
        if diff:
            if self.recover:
                excerpt = {name: list(vals)
                           for name, vals in sorted(diff.items())[:8]}
                self._recover_divergence("state_divergence", {
                    "diff": excerpt, "final": final,
                })
                return
            raise ValidationError(
                f"architectural state mismatch at guest instruction "
                f"{self.codesigned.guest_icount}: {diff}",
                state_diff=diff,
                guest_icount=self.codesigned.guest_icount)
        pages = list(self.codesigned.memory.present_pages())
        mismatch = self.codesigned.memory.first_difference(
            self.x86.memory, pages)
        if mismatch is not None:
            page, offset = mismatch
            if self.recover:
                self._recover_divergence("memory_divergence", {
                    "page": page, "offset": offset, "final": final,
                })
                return
            raise ValidationError(
                f"memory mismatch at page {page:#x} offset {offset:#x} "
                f"(guest instruction {self.codesigned.guest_icount})",
                memory_diff=mismatch,
                guest_icount=self.codesigned.guest_icount)
        # Clean comparison: everything dispatched before this checkpoint
        # is exonerated.
        self.codesigned.tol.clear_dispatch_window()

    # -- divergence recovery ----------------------------------------------------

    def _recover_divergence(self, kind: str, detail: dict) -> None:
        """Resync the co-designed component from the authoritative x86
        state, quarantine the translations implicated by the recent
        dispatch window, and record the incident."""
        tol = self.codesigned.tol
        suspects = tuple(tol.implicated_pcs())
        actions = []
        for pc in suspects:
            actions.extend(tol.quarantine_pc(pc))
        # Authoritative resync: architectural state plus every page the
        # emulated image has materialized (absent pages stay lazy and are
        # re-served on demand).  The retirement count is adopted too — a
        # diverged path may have retired a different number of (garbage)
        # instructions than the authoritative stream, and every future
        # synchronization target derives from this counter.
        self.codesigned.state.restore(self.x86.state.snapshot())
        for page in list(self.codesigned.memory.present_pages()):
            self.codesigned.memory.install_page(
                page, self.x86.export_page(page))
        tol.guest_icount = self.x86.icount
        tol.interp.icount = self.x86.icount
        tol.incidents.record(
            kind, self.codesigned.guest_icount, detail=detail,
            suspects=suspects, actions=tuple(actions))
        tol.clear_dispatch_window()
        self.recoveries += 1
        self.telemetry.instant("divergence_recovery", "resilience",
                               icount=self.codesigned.guest_icount,
                               kind=kind)
        self._emit_bundle(kind)

    def _emit_bundle(self, reason: str, error: Optional[str] = None) -> None:
        """Best-effort repro-bundle emission (never masks the run's own
        outcome with an IO failure)."""
        if self._repro_dir is None:
            return
        try:
            from repro.snapshot.bundle import write_bundle
            self.last_bundle_path = write_bundle(
                self._repro_dir, self, reason, error=error)
        except Exception:
            pass


def run_codesigned(program: GuestProgram,
                   config: Optional[TolConfig] = None,
                   os: Optional[GuestOS] = None,
                   frontend: Optional[Frontend] = None,
                   validate: bool = True):
    """Convenience API: run a program on DARCO; returns
    ``(RunResult, Controller)``."""
    controller = Controller(program, config=config, os=os,
                            frontend=frontend, validate=validate)
    result = controller.run()
    return result, controller
