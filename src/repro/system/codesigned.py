"""The co-designed component (paper §V).

Models the HW/SW co-designed processor: the TOL plus the host functional
emulator, holding the *emulated* guest architectural and memory state.  Its
memory image is lazy — first touch of a page raises a data request served
by the controller from the x86 component.  Only user-level code runs here;
system calls synchronize with the x86 component.
"""

from __future__ import annotations

from typing import Optional

from repro.guest.memory import PAGE_SIZE, PagedMemory
from repro.guest.state import GuestState
from repro.tol.config import TolConfig
from repro.tol.decoder import Frontend
from repro.tol.tol import Tol, TolEvent


class CoDesignedComponent:
    def __init__(self, config: Optional[TolConfig] = None,
                 frontend: Optional[Frontend] = None):
        self.memory = PagedMemory(demand_zero=False)
        self.state = GuestState()
        self.tol = Tol(self.state, self.memory, config=config,
                       frontend=frontend)
        self.data_requests = 0

    def receive_initial_state(self, initial: GuestState) -> None:
        """Initialization phase: adopt the state exported by the x86
        component and start TOL execution from its program counter."""
        self.state.restore(initial.snapshot())

    def run(self) -> TolEvent:
        """Execution phase: run until a synchronization event."""
        return self.tol.run()

    def install_page(self, page: int, data: bytes) -> None:
        """Resolve a data request."""
        if len(data) != PAGE_SIZE:
            raise ValueError("bad page image")
        self.memory.install_page(page, data)
        self.data_requests += 1

    def receive_syscall_result(self, authoritative: GuestState,
                               dirty_pages, page_source) -> None:
        """Adopt post-syscall architectural state and memory changes."""
        self.state.restore(authoritative.snapshot())
        for page in dirty_pages:
            if self.memory.page_present(page):
                self.memory.install_page(page, page_source(page))
        self.tol.complete_syscall()

    @property
    def guest_icount(self) -> int:
        return self.tol.guest_icount
