"""Host-environment snapshots for benchmark artifacts and the service.

Every ``BENCH_*.json`` at the repo root is a performance claim; whether
a number like "parallel speedup 0.89" is a regression or just a 1-core
CI box is undecidable without knowing the host it ran on.  Benchmarks
embed :func:`host_snapshot` in their envelope so gates (and humans
reading the checked-in artifacts) can condition on the machine
machine-checkably instead of by folklore.

``darco serve`` reuses the same snapshot for its ``/healthz`` payload.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, Optional


def available_cpus() -> int:
    """CPUs this *process* may use (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def load_averages() -> Optional[Dict[str, float]]:
    """1/5/15-minute load averages, or ``None`` where unsupported."""
    try:
        one, five, fifteen = os.getloadavg()
    except (AttributeError, OSError):
        return None
    return {"1m": round(one, 2), "5m": round(five, 2),
            "15m": round(fifteen, 2)}


def host_snapshot() -> Dict[str, Any]:
    """The benchmark-envelope host record: CPU budget, load at measure
    time, platform/python identity."""
    return {
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpus(),
        "loadavg": load_averages(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def effectively_multicore(min_cores: int = 2) -> bool:
    """Whether parallel-scaling gates are meaningful on this host."""
    return available_cpus() >= min_cores
