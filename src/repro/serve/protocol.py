"""Wire protocol for ``darco serve``: JSON lines over a local socket.

One request per line, one JSON object per response line (except
``watch``, which streams one status object per state change and ends
with a terminal-state object).  The transport is a Unix domain socket
by default (a *local* service, like the paper's simulation farm front
end) with an optional TCP/loopback mode for hosts without AF_UNIX.

Responses carry HTTP-flavoured ``code`` values so degradation is
explicit and machine-readable:

====  ==========================================================
200   OK (status / fetch of a completed job / healthz)
202   accepted (submit queued, or fetch of a still-running job)
203   degraded: a **stale** result served under overload, marked
      with ``stale: true`` and the fingerprint it was computed at
404   unknown job id / task
409   job failed (fetch); error record attached
429   shed: queue full, ``retry_after_s`` attached
400   malformed request
503   shutting down
====  ==========================================================

Jobs are the sweep runner's jobs: a registered task name plus JSON
params.  A ``config`` mapping inside ``params`` is inflated to a
:class:`~repro.tol.config.TolConfig` server-side (same coercion rules
as the CLI's ``--set``), so job identity — the content-addressed cache
key — is computed exactly as ``darco sweep`` computes it, and the two
entry points share one result universe.

A ``submit`` may additionally carry an optional ``trace`` object
(:meth:`~repro.telemetry.tracectx.TraceContext.as_wire`): the
distributed trace context minted client-side.  The field is additive
within protocol version 1 — older clients simply never send it — and
deliberately **excluded from job identity**: tracing a job must not
fork the content-addressed result universe, so the trace context rides
next to the job, never inside its key.  Malformed ``trace`` objects
are a 400 at the door, like every other malformed field.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Protocol version, echoed in every response envelope.
PROTOCOL_VERSION = 1

#: Maximum accepted request-line length (1 MiB): admission control
#: starts at the framing layer — a runaway client cannot balloon the
#: server's memory with one unbounded line.
MAX_LINE_BYTES = 1 << 20

OK = 200
ACCEPTED = 202
DEGRADED_STALE = 203
BAD_REQUEST = 400
NOT_FOUND = 404
FAILED = 409
SHED = 429
SHUTTING_DOWN = 503

#: Ops a client may send.
OPS = ("submit", "status", "fetch", "healthz", "metrics", "timeseries",
       "watch", "shutdown")


class ProtocolError(Exception):
    """Malformed frame or request object."""


def encode(message: Dict[str, Any]) -> bytes:
    """One response/request as a compact JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> Dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def response(code: int, **fields: Any) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "code": code, **fields}


def error_response(code: int, reason: str, **fields: Any) -> Dict[str, Any]:
    return response(code, error=reason, **fields)


def inflate_job_params(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Server-side param inflation: a JSON ``config`` mapping becomes a
    real :class:`TolConfig` so cache keys match ``darco sweep``'s."""
    from repro.tol.config import TolConfig
    params = dict(params or {})
    config = params.get("config")
    if isinstance(config, dict):
        params["config"] = TolConfig(
            recovery_mode="recover").with_overrides(config)
    return params
