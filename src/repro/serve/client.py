"""Blocking JSON-lines client for ``darco serve``.

Used by ``darco submit``/``status``/``fetch``, the smoke tool and the
load-generator benchmark.  Deliberately synchronous — clients are
simple; all the concurrency lives server-side.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterator, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """Transport-level failure talking to the service."""


class ServeClient:
    """One connection to a serve endpoint (unix socket or TCP)."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: Optional[float] = 30.0):
        if socket_path is None and port is None:
            raise ValueError("need a socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buf = b""

    # -- transport -----------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServeError(
                f"cannot reach serve endpoint "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {exc}"
            ) from None
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._buf = b""

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _read_line(self) -> bytes:
        while b"\n" not in self._buf:
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise ServeError("timed out waiting for response") from None
            except OSError as exc:
                raise ServeError(f"connection lost: {exc}") from None
            if not chunk:
                raise ServeError("server closed the connection")
            self._buf += chunk
            if len(self._buf) > protocol.MAX_LINE_BYTES:
                raise ServeError("response line too long")
        line, self._buf = self._buf.split(b"\n", 1)
        return line

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        self.connect()
        message = {"op": op, **fields}
        try:
            self._sock.sendall(protocol.encode(message))
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from None
        line = self._read_line()
        try:
            return json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"bad response frame: {exc}") from None

    # -- ops -----------------------------------------------------------------

    def submit(self, task: str, params: Optional[Dict[str, Any]] = None,
               label: str = "", trace: Optional[Dict[str, Any]] = None,
               **extra: Any) -> Dict[str, Any]:
        """Submit a job; ``trace`` is an optional distributed trace
        context (:meth:`TraceContext.as_wire`) minted client-side."""
        fields = dict(extra)
        if trace is not None:
            fields["trace"] = trace
        return self.request("submit", task=task, params=params or {},
                            label=label, **fields)

    def timeseries(self, n: Optional[int] = None) -> Dict[str, Any]:
        fields = {"n": n} if n is not None else {}
        return self.request("timeseries", **fields)

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        fields = {"job": job} if job else {}
        return self.request("status", **fields)

    def fetch(self, job: str) -> Dict[str, Any]:
        return self.request("fetch", job=job)

    def healthz(self) -> Dict[str, Any]:
        return self.request("healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def watch(self, job: str) -> Iterator[Dict[str, Any]]:
        """Yield status objects until the job reaches a terminal state."""
        self.connect()
        self._sock.sendall(protocol.encode({"op": "watch", "job": job}))
        while True:
            line = self._read_line()
            update = json.loads(line.decode("utf-8"))
            yield update
            if update.get("error") or update.get("state") in ("done",
                                                              "failed"):
                return

    def wait(self, job: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll ``status`` until terminal; returns the final ``fetch``."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job)
            if status.get("error"):
                return status
            if status.get("state") in ("done", "failed"):
                return self.fetch(job)
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job} not terminal after {timeout:.0f}s "
                    f"(state {status.get('state')!r})")
            time.sleep(poll_s)
