"""``darco top``: a curses-free live dashboard for the serve platform.

Renders one frame of operator-facing service state — throughput,
latency percentiles, queue-depth history, shard liveness, and the
hottest simulation tiers — from two protocol calls (``healthz`` +
``timeseries``).  Deliberately plain text: :func:`render` is a pure
function of the two response dicts, so the test suite exercises it
without a terminal, and the CLI loop is nothing but "poll, clear
screen, print" (ANSI home+clear; no curses dependency, works over any
pipe with ``--once``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.telemetry.timeseries import sparkline

#: Tier panel: digest counter -> display label (insertion order is
#: display order).
TIER_ROWS = (
    ("jobs.tol.guest_icount", "guest insns"),
    ("jobs.tol.translations.bb", "BB translations"),
    ("jobs.tol.translations.sb", "SB translations"),
    ("jobs.cache.hits", "code-cache hits"),
    ("jobs.cache.misses", "code-cache misses"),
    ("jobs.host.insns.committed", "host insns committed"),
    ("jobs.host.fastpath.insns", "host fastpath insns"),
    ("jobs.controller.validations", "validations"),
    ("jobs.controller.recoveries", "recoveries"),
    ("jobs.resilience.incidents", "incidents"),
)

#: Worker states that render as healthy.
_GOOD_STATES = ("idle", "busy")


def _fmt_count(value: float) -> str:
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= bound:
            return f"{value / bound:.1f}{suffix}"
    return f"{value:g}"


def _pct_line(name: str, pct: Dict[str, Any]) -> str:
    return (f"  {name:<14} p50 {pct.get('p50', 0.0):8.1f}  "
            f"p95 {pct.get('p95', 0.0):8.1f}  "
            f"p99 {pct.get('p99', 0.0):8.1f}  ms")


def render(healthz: Dict[str, Any],
           timeseries: Optional[Dict[str, Any]] = None,
           top_n: int = 6, width: int = 72) -> str:
    """One dashboard frame from a healthz (+ optional timeseries)
    response.  Pure: no I/O, no clock."""
    lines: List[str] = []
    queue = healthz.get("queue", {})
    jobs = healthz.get("jobs", {})
    counters = healthz.get("counters", {})
    workers = healthz.get("workers", [])
    alive = sum(1 for w in workers if w.get("alive"))

    lines.append(
        f"darco serve @ {healthz.get('endpoint', '?')}  "
        f"up {healthz.get('uptime_s', 0.0):.0f}s  "
        f"fingerprint {healthz.get('fingerprint', '?')}")
    lines.append("-" * width)

    rate = healthz.get("service_rate_jobs_per_s", 0.0)
    sat = healthz.get("saturation", 0.0)
    lines.append(
        f"jobs/s {rate:6.2f}   saturation {sat:5.1%}   "
        f"queue {queue.get('depth', 0)}/{queue.get('capacity', 0)} "
        f"(pending {queue.get('pending', 0)})")
    submitted = counters.get("serve.submitted", 0)
    coalesced = counters.get("serve.coalesced", 0)
    coalesce_rate = coalesced / submitted if submitted else 0.0
    lines.append(
        f"submitted {submitted}   coalesced {coalesced} "
        f"({coalesce_rate:.1%})   cache hits "
        f"{counters.get('serve.cache_hits', 0)}   stale served "
        f"{counters.get('serve.stale_served', 0)}   shed "
        f"{counters.get('serve.shed', 0)}")
    lines.append(
        f"completed {counters.get('serve.completed', 0)}   retries "
        f"{counters.get('serve.retries', 0)}   failed "
        f"{counters.get('serve.failed', 0)}   deadline kills "
        f"{counters.get('serve.deadline_kills', 0)}   worker deaths "
        f"{counters.get('serve.worker_deaths', 0)}")
    lines.append(
        "states  " + "  ".join(f"{s}:{jobs.get(s, 0)}"
                               for s in ("queued", "running",
                                         "retry-wait", "done",
                                         "failed")))

    latency = healthz.get("latency") or {}
    if latency:
        lines.append("")
        lines.append("latency")
        for name in ("queue_wait_ms", "run_ms"):
            pct = latency.get(name)
            if pct:
                lines.append(_pct_line(name, pct))

    if timeseries:
        samples = timeseries.get("samples", [])
        depths = [s.get("gauges", {}).get("serve.queue_depth", 0.0)
                  for s in samples]
        jobrates = [s.get("rates", {}).get("serve.completed", 0.0)
                    for s in samples if s.get("rates")]
        lines.append("")
        lines.append(f"queue depth  {sparkline(depths)}  "
                     f"now {depths[-1] if depths else 0:g}")
        if jobrates:
            lines.append(f"jobs/s       {sparkline(jobrates)}  "
                         f"now {jobrates[-1]:.2f}")

    lines.append("")
    lines.append(f"workers ({alive}/{len(workers)} alive)")
    for w in workers:
        state = w.get("state", "?")
        flag = " " if state in _GOOD_STATES else "!"
        busy = w.get("busy_with") or ""
        lines.append(
            f" {flag}shard {w.get('index', '?')}  {state:<8} "
            f"pid {str(w.get('pid', '-')):<8} spawns "
            f"{w.get('spawns', 0):<3} crashes {w.get('crashes_streak', 0):<3} "
            f"done {w.get('jobs_done', 0):<5} {busy[:12]}")

    tiers = [(label, counters.get(name, 0))
             for name, label in TIER_ROWS if counters.get(name, 0)]
    tiers.sort(key=lambda kv: kv[1], reverse=True)
    if tiers:
        lines.append("")
        lines.append("hottest tiers (work served)")
        top = tiers[:max(1, top_n)]
        peak = max(v for _, v in top)
        for label, value in top:
            bar = "#" * max(1, int(24 * value / peak))
            lines.append(f"  {label:<22} {_fmt_count(value):>8}  {bar}")

    return "\n".join(lines)
