"""``darco serve``: a fault-tolerant multi-tenant simulation service.

Composes the repo's existing robustness substrate into a served system
(ROADMAP item 3): the sweep task registry supplies the work, the
content-addressed :class:`~repro.harness.parallel.ResultCache` supplies
request coalescing and instant replays, the snapshot subsystem supplies
checkpoint/resume for killed workers, the shared
:class:`~repro.harness.retry.RetryPolicy` supplies attempt budgets and
backoff, and the telemetry registry supplies liveness/saturation
gauges.

Layers:

- :mod:`repro.serve.protocol` — the JSON-lines wire protocol (submit /
  status / fetch / healthz / metrics / watch / shutdown) with
  HTTP-flavoured status codes (202 accepted, 429 shed, ...);
- :mod:`repro.serve.supervisor` — one supervised worker process per
  shard: crash/SIGKILL detection, respawn with exponential backoff +
  jitter, per-job deadline kills;
- :mod:`repro.serve.service` — the asyncio front end: admission
  control, a bounded queue with explicit load shedding, coalescing,
  degradation tiers, the reaper, and the job table;
- :mod:`repro.serve.client` — the small blocking client used by
  ``darco submit`` / ``status`` / ``fetch`` and the benchmarks;
- :mod:`repro.serve.flightrec` — the per-job flight recorder: a
  bounded ring of recent lifecycle events attached to failed jobs;
- :mod:`repro.serve.dashboard` — the pure renderer behind
  ``darco top``.

Observability (DESIGN.md §13): jobs carry a distributed trace context
(:mod:`repro.telemetry.tracectx`) from ``darco submit`` through the
wire protocol and the shard pipe into the worker, each process
appending spans to its own span file; ``darco trace --job`` merges
them into one Perfetto timeline.  A time-series ring
(:mod:`repro.telemetry.timeseries`) samples the service registry for
``darco top`` and the ``timeseries`` op.
"""

from repro.serve.service import JobEntry, ServeConfig, ServeService
from repro.serve.client import ServeClient
from repro.serve.flightrec import FlightRecorder

__all__ = ["FlightRecorder", "JobEntry", "ServeClient", "ServeConfig",
           "ServeService"]
