"""The serve front end: admission, coalescing, degradation, supervision.

Robustness model (DESIGN.md §11):

- **Admission control.**  Accepted jobs live in a job table plus one
  dispatch queue bounded by ``max_pending``; past the bound, new work
  is *shed explicitly* (429 + ``retry_after_s`` derived from the
  observed service rate) instead of growing memory without bound.
  Already-accepted jobs bypass the bound on retry — acceptance is a
  completion promise, shedding happens only at the door.  Client
  budgets (``deadline_s``, ``max_attempts``) are validated at the door
  too: garbage is the submitter's 400, never a worker-pool exception.
  Completed/failed table entries are bounded as well
  (``max_terminal_entries``, oldest-finished evicted; the stale index
  is an LRU under ``max_stale_entries``) — evicted results remain
  fetchable by full key from the on-disk result cache.
- **Coalescing.**  Job identity is the sweep runner's content-addressed
  cache key, so identical submissions — same task, params, config and
  source fingerprint, from any number of tenants — ride one run and one
  table entry; completed results land in the shared
  :class:`~repro.harness.parallel.ResultCache`, where both later
  submissions and ``darco sweep`` replay them for free.
- **Supervision.**  Worker shards (:mod:`repro.serve.supervisor`) are
  restarted on death with exponential backoff + jitter; the in-flight
  job's attempt is charged against its bounded retry budget and the job
  requeues (resuming from its last checkpoint when the task supports
  it) or fails with the death recorded.  A reaper enforces per-job
  deadlines by killing the worker — the deadline path and the chaos
  path are the same code.
- **Graceful degradation.**  Under overload the service still answers:
  cache hits are served from the shared result cache without touching
  the queue, and when a full queue forces shedding, a previously
  completed result for the same *logical* job (any source fingerprint)
  is served instead with ``stale: true`` and the fingerprint it was
  computed at (203, never silently).  ``healthz`` is answered inline by
  the event loop, so liveness never queues behind simulation work.

Wall-clock note: unlike the simulator underneath it, the service layer
is *about* wall clock (deadlines, backoff, latency gauges).  The
determinism contract lives one level down — job *values* remain
bit-identical however many times, on whichever shard, a job ran.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.harness.parallel import (
    _CHECKPOINTABLE, _MISS, _TASKS, ResultCache, SweepJob,
    code_fingerprint, serialize_params, telemetry_digest,
)
from repro.harness.retry import RetryPolicy
from repro.hostinfo import host_snapshot
from repro.serve import protocol
from repro.serve.flightrec import FlightRecorder
from repro.serve.supervisor import (
    STATE_BACKOFF, STATE_BUSY, STATE_IDLE, Shard,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.timeseries import TimeSeriesScraper
from repro.telemetry.tracectx import (
    DEFAULT_TRACE_DIR, SpanFileWriter, TraceContext, epoch_us,
    mint_trace_id,
)

#: Job states (terminal: done / failed).
QUEUED = "queued"
RUNNING = "running"
RETRY_WAIT = "retry-wait"
DONE = "done"
FAILED = "failed"
TERMINAL = (DONE, FAILED)

#: Events kept per job (forensic tail, not a full log).
MAX_EVENTS_PER_JOB = 32

#: Hard ceiling on a client-requested per-job attempt budget.
MAX_ATTEMPTS_CAP = 8


def wire_value(value: Any) -> Any:
    """JSON-able projection of a task value (same shape ``darco sweep
    --out`` writes, so served and swept artifacts are comparable)."""
    if hasattr(value, "as_dict"):
        return value.as_dict()
    return serialize_params(value)


@dataclass
class ServeConfig:
    """Service shape: transport, pool size, robustness budgets."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    workers: int = 2
    #: Admission bound: queued + running jobs before shedding starts.
    max_pending: int = 64
    #: Default per-attempt deadline (seconds; None = unbounded).
    default_deadline_s: Optional[float] = None
    #: Worker respawn + job retry policy (shared with the sweep runner).
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, base_delay_s=0.05, max_delay_s=2.0, jitter=0.5))
    use_cache: bool = True
    cache_dir: str = ".repro_cache"
    #: Arm checkpointing for checkpointable tasks (killed workers then
    #: *resume* long jobs instead of restarting them).
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    #: Serve stale results (203) instead of shedding when possible.
    stale_serve: bool = True
    reaper_tick_s: float = 0.05
    #: Terminal (done/failed) table entries kept in memory; beyond the
    #: bound the oldest-finished are evicted (0 = unbounded).  Evicted
    #: results stay fetchable by full key from the on-disk result cache.
    max_terminal_entries: int = 512
    #: Logical results kept for the stale-serving tier (LRU; 0 = unbounded).
    max_stale_entries: int = 256
    #: Distributed tracing default for jobs that arrive without their
    #: own context: ``off`` (no span files), ``counters`` (lifecycle
    #: spans: submit/queue/attempt/retry), ``full`` (simulator-internal
    #: spans too).  A client-supplied context overrides per job.
    tracing: str = "counters"
    #: Directory for per-process span files (client/service/worker).
    trace_dir: str = DEFAULT_TRACE_DIR
    #: Time-series sampling interval (seconds) and ring capacity.
    metrics_interval_s: float = 1.0
    timeseries_capacity: int = 512
    #: Flight-recorder ring size per job (events).
    flight_recorder_events: int = 64


@dataclass
class JobEntry:
    """One logical job in the table (possibly many submitters)."""

    key: str
    job: SweepJob
    state: str = QUEUED
    attempts: int = 0
    max_attempts: int = 3
    deadline_s: Optional[float] = None
    submits: int = 1
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None
    events: List[str] = field(default_factory=list)
    value: Any = None
    value_payload: Any = None
    telemetry_digest: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    stderr_tail: str = ""
    cached: bool = False
    stale: bool = False
    stale_fingerprint: Optional[str] = None
    duration_s: float = 0.0
    #: Distributed trace context riding with (never inside) the job.
    trace: Optional[TraceContext] = None
    #: Flight recorder: bounded ring of recent lifecycle events,
    #: attached to the record on terminal failure.
    flight: Optional[FlightRecorder] = None
    #: Epoch-µs instant of the most recent (re)queue — the left edge
    #: of the next queue-wait span.
    queued_us: int = 0
    #: Epoch-µs instant of the most recent dispatch to a shard.
    dispatched_us: int = 0
    #: Bumped on every visible change (watch streams on it).
    version: int = 0

    def mark(self, state: str, note: str = "") -> None:
        self.state = state
        stamp = time.strftime("%H:%M:%S")
        self.events.append(f"{stamp} {state}{': ' + note if note else ''}")
        del self.events[:-MAX_EVENTS_PER_JOB]
        if state in TERMINAL:
            self.finished = time.time()
        self.version += 1

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def status_dict(self) -> Dict[str, Any]:
        return {
            "job": self.key[:16],
            "key": self.key,
            "task": self.job.task,
            "label": self.job.label,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "deadline_s": self.deadline_s,
            "submits": self.submits,
            "cached": self.cached,
            "stale": self.stale,
            "stale_fingerprint": self.stale_fingerprint,
            "duration_s": round(self.duration_s, 4),
            "trace_id": self.trace.trace_id if self.trace else None,
            "telemetry_digest": self.telemetry_digest,
            # "error" is reserved for protocol-level failures; a job's
            # own (most recent) failure rides in "last_error".
            "last_error": (self.error or "").strip().splitlines()[-1]
            if self.error else None,
            "events": list(self.events),
            "version": self.version,
        }


class ServeService:
    """The asyncio job service (one instance per ``darco serve``)."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.retry = self.config.retry
        self.registry = MetricsRegistry()
        self.table: Dict[str, JobEntry] = {}
        self.queue: asyncio.Queue = asyncio.Queue()
        self.shards = [Shard(i) for i in range(max(1,
                                                   self.config.workers))]
        self.cache: Optional[ResultCache] = None
        if self.config.use_cache:
            self.cache = ResultCache(self.config.cache_dir)
            self.cache.cleanup_stale()
        self.fingerprint = code_fingerprint()
        #: logical key -> last completed wire payload + provenance
        #: (the stale-serving tier under overload).
        self._stale_index: Dict[str, Dict[str, Any]] = {}
        self._pending = 0           # queued + running + retry-wait
        self._duration_ewma = 0.0   # seconds per completed job
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        #: In-flight retry-wait sleepers (cancelled on stop()).
        self._retry_tasks: set = set()
        self._stopping = False
        self._drained = asyncio.Event()
        self._shutdown_requested = asyncio.Event()
        self.started_at = time.time()
        #: Per-phase latency histograms (ms) promoted to p50/p95/p99 on
        #: healthz and scraped into the time-series ring.
        self.queue_wait_hist = self.registry.histogram(
            "serve.queue_wait_ms")
        self.run_hist = self.registry.histogram("serve.run_ms")
        #: Bounded time-series ring sampled by :meth:`_sample_loop`.
        self.scraper = TimeSeriesScraper(
            self.registry,
            interval_s=self.config.metrics_interval_s,
            capacity=self.config.timeseries_capacity)
        #: The service's span file (lazy: created on first traced job,
        #: so a tracing-off service never touches the trace dir).
        self._spans: Optional[SpanFileWriter] = None

    def _span_writer(self) -> SpanFileWriter:
        if self._spans is None:
            self._spans = SpanFileWriter(self.config.trace_dir, "service")
        return self._spans

    def _trace_span(self, entry: JobEntry, name: str, start_us: int,
                    end_us: int, **args: Any) -> None:
        """One service-side X span for a traced job (no-op otherwise;
        tracing must never fail service work)."""
        if entry.trace is None or entry.trace.mode == "off":
            return
        try:
            self._span_writer().complete(name, "service", start_us,
                                         end_us, ctx=entry.trace, **args)
        except Exception:
            pass

    def _trace_instant(self, entry: JobEntry, name: str,
                       **args: Any) -> None:
        if entry.trace is None or entry.trace.mode == "off":
            return
        try:
            self._span_writer().instant(name, "service",
                                        ctx=entry.trace, **args)
        except Exception:
            pass

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start shards + reaper."""
        # Raise asyncio's default 64 KiB StreamReader limit to the
        # protocol's own line bound (plus slack so the limit trips
        # strictly *after* protocol.decode's check would): large-params
        # submissions get a 400, not a dropped connection.
        limit = protocol.MAX_LINE_BYTES + 4096
        if self.config.socket_path:
            path = Path(self.config.socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(path), limit=limit)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port or 0, limit=limit)
        for shard in self.shards:
            self._tasks.append(asyncio.ensure_future(
                self._run_shard(shard)))
        self._tasks.append(asyncio.ensure_future(self._reap_loop()))
        self._tasks.append(asyncio.ensure_future(self._sample_loop()))
        self._update_gauges()
        self.scraper.sample()

    @property
    def endpoint(self) -> str:
        if self.config.socket_path:
            return str(self.config.socket_path)
        addr = self._server.sockets[0].getsockname()
        return f"{addr[0]}:{addr[1]}"

    @property
    def port(self) -> Optional[int]:
        if self.config.socket_path or self._server is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        await self._shutdown_requested.wait()
        await self.stop()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted job is terminal."""
        self._check_drained()
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self) -> None:
        """Stop accepting, cancel supervision, tear the pool down."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        pending = self._tasks + list(self._retry_tasks)
        for task in pending:
            task.cancel()
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._retry_tasks.clear()
        # Closing pipes unblocks any recv threads; kill what's left.
        for shard in self.shards:
            shard.stop()
        if self.config.socket_path:
            try:
                Path(self.config.socket_path).unlink()
            except OSError:
                pass

    # -- telemetry -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)

    def _update_gauges(self) -> None:
        reg = self.registry
        reg.set_gauge("serve.queue_depth", self.queue.qsize())
        reg.set_gauge("serve.pending", self._pending)
        reg.set_gauge("serve.inflight", sum(
            1 for s in self.shards if s.state == STATE_BUSY))
        reg.set_gauge("serve.workers_alive", sum(
            1 for s in self.shards if s.alive))
        reg.set_gauge("serve.workers_total", len(self.shards))
        reg.set_gauge("serve.saturation", min(
            1.0, self._pending / max(1, self.config.max_pending)))

    def service_rate(self) -> float:
        """Observed completions/second across the pool (0 = unknown)."""
        if self._duration_ewma <= 0.0:
            return 0.0
        workers = max(1, sum(1 for s in self.shards if s.alive))
        return workers / self._duration_ewma

    # -- job identity ----------------------------------------------------------

    def _logical_key(self, job: SweepJob) -> str:
        """Identity of the job *regardless of source version* — the
        stale-serving index key."""
        return job.key(fingerprint="")

    def _find(self, job_id: str) -> Optional[JobEntry]:
        if job_id in self.table:
            return self.table[job_id]
        matches = [e for k, e in self.table.items()
                   if k.startswith(job_id)]
        return matches[0] if len(matches) == 1 else None

    # -- admission -------------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Admission decision for one submit request (sync: runs inline
        on the event loop; nothing here blocks)."""
        if self._stopping:
            return protocol.error_response(
                protocol.SHUTTING_DOWN, "service is shutting down")
        task = spec.get("task", "workload_metrics")
        if task not in _TASKS:
            return protocol.error_response(
                protocol.NOT_FOUND,
                f"unknown task {task!r}; registered: "
                f"{', '.join(sorted(t for t in _TASKS if not t.startswith('_')))}")
        try:
            params = protocol.inflate_job_params(spec.get("params"))
        except (ValueError, TypeError) as exc:
            return protocol.error_response(
                protocol.BAD_REQUEST, f"bad params: {exc}")
        # Budgets are validated at the door: a bad value is the
        # client's 400, never a worker-pool exception later.
        deadline = spec.get("deadline_s", self.config.default_deadline_s)
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                deadline = math.nan
            if not math.isfinite(deadline) or deadline <= 0:
                return protocol.error_response(
                    protocol.BAD_REQUEST,
                    f"deadline_s must be a positive number, got "
                    f"{spec.get('deadline_s')!r}")
        try:
            max_attempts = int(spec.get("max_attempts",
                                        self.retry.max_attempts))
        except (TypeError, ValueError):
            return protocol.error_response(
                protocol.BAD_REQUEST,
                f"max_attempts must be an integer, got "
                f"{spec.get('max_attempts')!r}")
        max_attempts = max(1, min(MAX_ATTEMPTS_CAP, max_attempts))
        try:
            trace = TraceContext.from_wire(spec.get("trace"))
        except ValueError as exc:
            return protocol.error_response(
                protocol.BAD_REQUEST, f"bad trace: {exc}")
        job = SweepJob(task=task, params=params,
                       label=spec.get("label", ""))
        key = job.key(self.fingerprint)
        # No client context: mint one server-side (deterministically,
        # from the job key) unless tracing is off.  The context rides
        # next to the job, never inside its identity.
        if trace is None and self.config.tracing != "off":
            trace = TraceContext(trace_id=mint_trace_id(seed=key),
                                 mode=self.config.tracing)
        if trace is not None:
            trace = trace.with_job(key[:16])
        self._count("serve.submitted")

        entry = self.table.get(key)
        if entry is not None and not entry.terminal:
            # Identical in-flight job: ride it.
            entry.submits += 1
            entry.version += 1
            self._count("serve.coalesced")
            if entry.flight is not None:
                entry.flight.mark("submit_coalesced",
                                  submits=entry.submits)
            self._trace_instant(entry, "submit_coalesced",
                                submits=entry.submits)
            return protocol.response(
                protocol.ACCEPTED, coalesced=True,
                **entry.status_dict())
        if entry is not None and entry.state == DONE and not entry.stale:
            entry.submits += 1
            self._count("serve.coalesced")
            return protocol.response(protocol.OK, coalesced=True,
                                     **entry.status_dict())
        # Failed (or stale-served) entries are resubmittable: fall
        # through to fresh admission below.

        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not _MISS:
                entry = self._install_done(job, key, cached, cached=True)
                self._count("serve.cache_hits")
                return protocol.response(protocol.OK,
                                         **entry.status_dict())

        if self._pending >= self.config.max_pending:
            return self._degrade_or_shed(job, key)

        entry = JobEntry(key=key, job=job,
                         max_attempts=max_attempts,
                         deadline_s=deadline,
                         trace=trace,
                         flight=FlightRecorder(
                             self.config.flight_recorder_events))
        if self.table.get(key) is not None:
            entry.submits += self.table[key].submits
        self.table[key] = entry
        entry.mark(QUEUED, f"accepted (queue depth {self.queue.qsize()})")
        entry.queued_us = epoch_us()
        entry.flight.mark("accepted", task=task,
                          queue_depth=self.queue.qsize(),
                          trace_id=trace.trace_id if trace else None)
        self._trace_instant(entry, "accepted",
                            queue_depth=self.queue.qsize())
        self._enqueue(entry)
        self._count("serve.accepted")
        return protocol.response(protocol.ACCEPTED, coalesced=False,
                                 **entry.status_dict())

    def _degrade_or_shed(self, job: SweepJob, key: str) -> Dict[str, Any]:
        """Queue is full: serve stale if we can, shed explicitly if not."""
        logical = self._logical_key(job)
        known = self._stale_index.get(logical)
        if self.config.stale_serve and known is not None:
            entry = JobEntry(key=key, job=job, state=DONE,
                             stale=True,
                             stale_fingerprint=known["fingerprint"])
            entry.value_payload = known["payload"]
            entry.telemetry_digest = known.get("digest", {})
            entry.mark(DONE, "stale result served under overload "
                             f"(computed at {known['fingerprint'][:12]})")
            self.table[key] = entry
            self._count("serve.stale_served")
            self._evict_terminal()
            return protocol.response(protocol.DEGRADED_STALE,
                                     **entry.status_dict())
        self._count("serve.shed")
        retry_after = self.retry.retry_after_hint(
            self._pending, self.service_rate())
        return protocol.error_response(
            protocol.SHED,
            f"queue full ({self._pending}/{self.config.max_pending})",
            retry_after_s=round(retry_after, 2))

    def _enqueue(self, entry: JobEntry) -> None:
        self._pending += 1
        self._drained.clear()
        self.queue.put_nowait(entry.key)
        self._update_gauges()

    def _requeue(self, entry: JobEntry) -> None:
        """Re-dispatch an already-accepted job (bypasses admission:
        acceptance is a completion promise)."""
        self.queue.put_nowait(entry.key)
        self._update_gauges()

    def _install_done(self, job: SweepJob, key: str, value: Any,
                      cached: bool) -> JobEntry:
        entry = JobEntry(key=key, job=job, state=DONE, cached=cached)
        entry.value = value
        entry.value_payload = wire_value(value)
        entry.telemetry_digest = telemetry_digest(value)
        entry.mark(DONE, "served from result cache" if cached else "")
        self.table[key] = entry
        self._note_known_result(entry)
        self._evict_terminal()
        return entry

    def _evict_terminal(self) -> None:
        """Bound the table: a long-lived service must not accumulate one
        payload per job forever.  Oldest-finished terminal entries go
        first; their values remain fetchable (by full key) from the
        on-disk result cache."""
        cap = self.config.max_terminal_entries
        if cap <= 0:
            return
        terminal = [e for e in self.table.values() if e.terminal]
        excess = len(terminal) - cap
        if excess <= 0:
            return
        terminal.sort(key=lambda e: e.finished or 0.0)
        for entry in terminal[:excess]:
            del self.table[entry.key]
            self._count("serve.evicted")

    # -- shard supervision -----------------------------------------------------

    async def _run_shard(self, shard: Shard) -> None:
        """Supervision loop: spawn, pump until death, backoff, respawn."""
        while not self._stopping:
            shard.spawn()
            self._count("serve.worker_spawns")
            self._update_gauges()
            try:
                clean = await self._pump_shard(shard)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Last-ditch net: supervision survives *any* pump bug.
                # The in-flight job (if one) is charged and retried so
                # it cannot wedge in RUNNING forever.
                self._count("serve.supervisor_errors")
                key, _reason = shard.take_crash_context()
                entry = self.table.get(key) if key else None
                if entry is not None and entry.state == RUNNING:
                    entry.error = f"supervisor error: {exc!r}"
                    self._retry_or_fail(entry, entry.error)
                clean = False
            shard.reap()
            self._update_gauges()
            if clean or self._stopping:
                break
            shard.crashes += 1
            shard.state = STATE_BACKOFF
            self._count("serve.worker_restarts")
            delay = self.retry.delay(
                shard.crashes, seed=f"respawn:{shard.index}:{shard.spawns}")
            await asyncio.sleep(delay)

    async def _pump_shard(self, shard: Shard) -> bool:
        """Feed jobs to one worker until it dies (False) or the service
        stops (True)."""
        frame = await asyncio.to_thread(shard.recv)
        if frame is None or frame[0] != "ready":
            return False
        shard.state = "idle"
        while not self._stopping:
            entry = await self._next_job()
            if entry is None:
                continue
            entry.attempts += 1
            entry.mark(RUNNING,
                       f"attempt {entry.attempts}/{entry.max_attempts} "
                       f"on shard {shard.index} (pid {shard.pid})")
            now_us = epoch_us()
            if entry.queued_us:
                wait_ms = max(0.0, (now_us - entry.queued_us) / 1000.0)
                self.queue_wait_hist.observe(wait_ms)
                self._trace_span(entry, "queue_wait", entry.queued_us,
                                 now_us, attempt=entry.attempts)
                if entry.flight is not None:
                    entry.flight.span("queue_wait", wait_ms,
                                      attempt=entry.attempts)
            entry.dispatched_us = now_us
            if entry.flight is not None:
                entry.flight.mark("dispatch", attempt=entry.attempts,
                                  shard=shard.index, pid=shard.pid)
            try:
                shard.send_job(entry.key, entry.job.task,
                               self._exec_params(entry),
                               entry.deadline_s,
                               trace=self._wire_trace(entry))
            except (BrokenPipeError, OSError):
                # Worker died between jobs: don't charge the attempt.
                entry.attempts -= 1
                entry.mark(QUEUED, "worker lost before dispatch; requeued")
                entry.queued_us = epoch_us()
                self._requeue(entry)
                return False
            except Exception as exc:
                # Defence in depth: a job the pipe cannot carry (or any
                # other unexpected dispatch failure) fails the *job* —
                # it must never kill this shard's supervision task.
                shard.abort_dispatch()
                entry.error = (f"dispatch error on attempt "
                               f"{entry.attempts}: {exc!r}")
                self._count("serve.dispatch_errors")
                self._retry_or_fail(entry, entry.error)
                self._update_gauges()
                continue
            self._update_gauges()
            started = time.monotonic()
            frame = await asyncio.to_thread(shard.recv)
            if frame is None:
                _key, reason = shard.take_crash_context()
                self._on_worker_death(entry, reason,
                                      time.monotonic() - started)
                return False
            _tag, _key, status, payload, duration, stderr_tail = frame
            shard.note_job_done()
            try:
                self._on_result(entry, status, payload, duration,
                                stderr_tail)
            except Exception as exc:
                # A result we cannot process charges the job, not the
                # supervision task (the worker itself is fine).
                self._count("serve.supervisor_errors")
                if not entry.terminal:
                    entry.error = f"result handling error: {exc!r}"
                    self._retry_or_fail(entry, entry.error)
            self._update_gauges()
        return True

    async def _next_job(self) -> Optional[JobEntry]:
        key = await self.queue.get()
        entry = self.table.get(key)
        if entry is None or entry.state != QUEUED:
            return None
        return entry

    def _wire_trace(self, entry: JobEntry) -> Optional[Dict[str, Any]]:
        """The trace payload a dispatch carries to the worker (None when
        this job is untraced): context + the span-file directory."""
        if entry.trace is None or entry.trace.mode == "off":
            return None
        return {"ctx": entry.trace.as_wire(),
                "dir": str(self.config.trace_dir)}

    def _exec_params(self, entry: JobEntry) -> Dict[str, Any]:
        """Execution params for this attempt: checkpoint plumbing rides
        outside job identity, exactly like the sweep runner's."""
        params = entry.job.params
        if (self.config.checkpoint_dir is not None
                and entry.job.task in _CHECKPOINTABLE):
            params = {**params, "_checkpoint": {
                "dir": str(Path(self.config.checkpoint_dir)
                           / entry.key[:16]),
                "every": int(self.config.checkpoint_every),
                # First attempt starts clean; a retry after a kill or
                # deadline resumes from the last checkpoint.
                "resume": entry.attempts > 1,
            }}
        return params

    def _on_result(self, entry: JobEntry, status: str, payload: Any,
                   duration: float, stderr_tail: str) -> None:
        end_us = epoch_us()
        run_ms = max(0.0, duration * 1000.0)
        self.run_hist.observe(run_ms)
        if entry.dispatched_us:
            self._trace_span(entry, "run", entry.dispatched_us, end_us,
                             attempt=entry.attempts, status=status)
        if entry.flight is not None:
            entry.flight.span("run", run_ms, attempt=entry.attempts,
                              status=status)
        if status == "ok":
            entry.value = payload
            entry.value_payload = wire_value(payload)
            entry.telemetry_digest = telemetry_digest(payload)
            entry.duration_s = duration
            entry.error = None
            entry.mark(DONE, f"completed in {duration:.2f}s")
            if entry.flight is not None:
                entry.flight.counters("digest", entry.telemetry_digest)
            self._trace_instant(entry, "done",
                                attempts=entry.attempts)
            self._job_finished(entry)
            self._count("serve.completed")
            alpha = 0.3
            self._duration_ewma = (duration if not self._duration_ewma
                                   else alpha * duration
                                   + (1 - alpha) * self._duration_ewma)
            if self.cache is not None:
                self.cache.put(entry.key, payload)
            self._note_known_result(entry)
            return
        # Task raised: retry under the budget (transient host trouble),
        # then surface the record.
        entry.error = payload
        entry.stderr_tail = stderr_tail
        self._count("serve.task_errors")
        if entry.flight is not None:
            last = (payload or "").strip().splitlines()
            entry.flight.incident("task_error", attempt=entry.attempts,
                                  error=last[-1] if last else "")
        self._retry_or_fail(entry, f"task error on attempt "
                                   f"{entry.attempts}")

    def _on_worker_death(self, entry: JobEntry, reason: Optional[str],
                         elapsed: float) -> None:
        if reason == "deadline":
            self._count("serve.deadline_kills")
            entry.error = (f"deadline exceeded "
                           f"({entry.deadline_s:.1f}s) on attempt "
                           f"{entry.attempts}; worker killed")
        else:
            self._count("serve.worker_deaths")
            entry.error = (f"worker process died after {elapsed:.2f}s "
                           f"on attempt {entry.attempts} (crash or kill)")
        incident = ("deadline_kill" if reason == "deadline"
                    else "worker_death")
        if entry.flight is not None:
            entry.flight.incident(incident, attempt=entry.attempts,
                                  elapsed_s=round(elapsed, 3))
        self._trace_instant(entry, incident, attempt=entry.attempts)
        self._retry_or_fail(entry, entry.error)

    def _retry_or_fail(self, entry: JobEntry, note: str) -> None:
        if entry.attempts < entry.max_attempts and not self._stopping:
            self._count("serve.retries")
            delay = self.retry.delay(entry.attempts, seed=entry.key)
            entry.mark(RETRY_WAIT, f"{note}; retrying in {delay:.2f}s")
            if entry.flight is not None:
                entry.flight.mark("retry_wait", attempt=entry.attempts,
                                  delay_s=round(delay, 3))
            self._trace_instant(entry, "retry_wait",
                                attempt=entry.attempts,
                                delay_s=round(delay, 3))
            task = asyncio.get_running_loop().create_task(
                self._requeue_later(entry, delay))
            self._retry_tasks.add(task)
            task.add_done_callback(self._retry_tasks.discard)
        else:
            entry.mark(FAILED, note)
            if entry.flight is not None:
                entry.flight.incident("failed", attempts=entry.attempts)
            self._trace_instant(entry, "failed",
                                attempts=entry.attempts)
            self._job_finished(entry)
            self._count("serve.failed")

    async def _requeue_later(self, entry: JobEntry, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if entry.terminal or self._stopping:
            return
        entry.mark(QUEUED, "requeued for retry")
        entry.queued_us = epoch_us()
        if entry.flight is not None:
            entry.flight.mark("requeued", attempt=entry.attempts)
        self._requeue(entry)

    def _job_finished(self, entry: JobEntry) -> None:
        self._pending = max(0, self._pending - 1)
        self._check_drained()
        self._evict_terminal()
        self._update_gauges()

    def _check_drained(self) -> None:
        if self._pending == 0:
            self._drained.set()

    def _note_known_result(self, entry: JobEntry) -> None:
        if entry.value_payload is None:
            return
        # Accumulate the job's simulator digest into service-level
        # counters ("work served, by tier") — the data behind darco
        # top's hottest-tier panel.
        for name, value in (entry.telemetry_digest or {}).items():
            try:
                self.registry.inc(f"jobs.{name}", int(value))
            except (TypeError, ValueError):
                continue
        logical = self._logical_key(entry.job)
        # Re-insert for LRU recency (dicts preserve insertion order),
        # then trim oldest-first down to the bound.
        self._stale_index.pop(logical, None)
        self._stale_index[logical] = {
            "payload": entry.value_payload,
            "digest": entry.telemetry_digest,
            "fingerprint": self.fingerprint,
        }
        cap = self.config.max_stale_entries
        while cap > 0 and len(self._stale_index) > cap:
            self._stale_index.pop(next(iter(self._stale_index)))

    # -- the reaper ------------------------------------------------------------

    async def _reap_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.reaper_tick_s)
            now = time.monotonic()
            for shard in self.shards:
                if (shard.state == STATE_BUSY
                        and shard.deadline is not None
                        and now > shard.deadline):
                    shard.kill("deadline")

    async def _sample_loop(self) -> None:
        """Feed the time-series ring at the configured interval (cheap:
        one registry snapshot per tick, no collectors)."""
        while not self._stopping:
            await asyncio.sleep(self.scraper.interval_s)
            self._update_gauges()
            self.scraper.sample()

    # -- request handling ------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, OSError):
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # Line exceeded the reader limit.  Framing is lost
                    # past this point, so answer 400 and hang up rather
                    # than silently dropping the connection.
                    writer.write(protocol.encode(protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"request line exceeds "
                        f"{protocol.MAX_LINE_BYTES} bytes")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode(protocol.error_response(
                        protocol.BAD_REQUEST, str(exc))))
                    await writer.drain()
                    continue
                op = request.get("op")
                if op == "watch":
                    await self._handle_watch(request, writer)
                    continue
                reply = self._dispatch(request)
                writer.write(protocol.encode(reply))
                await writer.drain()
                if op == "shutdown":
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "submit":
            return self.submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "fetch":
            return self._handle_fetch(request)
        if op == "healthz":
            return self.healthz()
        if op == "metrics":
            self._update_gauges()
            return protocol.response(
                protocol.OK, snapshot=self.registry.snapshot(
                    collect=False).as_dict())
        if op == "timeseries":
            n = request.get("n")
            try:
                n = None if n is None else max(1, int(n))
            except (TypeError, ValueError):
                return protocol.error_response(
                    protocol.BAD_REQUEST,
                    f"n must be an integer, got {request.get('n')!r}")
            self._update_gauges()
            self.scraper.sample()
            return protocol.response(
                protocol.OK, timeseries=self.scraper.wire_dict(n))
        if op == "shutdown":
            self._shutdown_requested.set()
            return protocol.response(protocol.OK, stopping=True)
        return protocol.error_response(
            protocol.BAD_REQUEST,
            f"unknown op {op!r}; valid: {', '.join(protocol.OPS)}")

    def _handle_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job")
        if not job_id:
            return self.healthz()
        entry = self._find(job_id)
        if entry is None:
            return protocol.error_response(protocol.NOT_FOUND,
                                           f"unknown job {job_id!r}")
        return protocol.response(protocol.OK, **entry.status_dict())

    def _handle_fetch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job") or ""
        entry = self._find(job_id)
        if entry is None:
            # Evicted (or pre-restart) completions stay fetchable by
            # full key from the on-disk result cache.  Full hex keys
            # only: the key names a cache path, so a prefix (or any
            # other client string) must not reach the filesystem.
            if self.cache is not None and len(job_id) == 64 \
                    and all(c in "0123456789abcdef" for c in job_id):
                cached = self.cache.get(job_id)
                if cached is not _MISS:
                    self._count("serve.cache_hits")
                    return protocol.response(
                        protocol.OK, job=job_id[:16], key=job_id,
                        state=DONE, cached=True, evicted=True,
                        value=wire_value(cached))
            return protocol.error_response(
                protocol.NOT_FOUND, f"unknown job {job_id!r}")
        if entry.state == DONE:
            code = (protocol.DEGRADED_STALE if entry.stale
                    else protocol.OK)
            return protocol.response(code, value=entry.value_payload,
                                     **entry.status_dict())
        if entry.state == FAILED:
            return protocol.response(protocol.FAILED,
                                     stderr_tail=entry.stderr_tail,
                                     full_error=entry.error,
                                     flight=entry.flight.as_dict()
                                     if entry.flight is not None
                                     else None,
                                     **entry.status_dict())
        return protocol.response(protocol.ACCEPTED,
                                 **entry.status_dict())

    async def _handle_watch(self, request: Dict[str, Any],
                            writer: asyncio.StreamWriter) -> None:
        """Stream status objects until the job reaches a terminal state."""
        job_id = request.get("job")
        entry = self._find(job_id or "")
        if entry is None:
            writer.write(protocol.encode(protocol.error_response(
                protocol.NOT_FOUND, f"unknown job {job_id!r}")))
            await writer.drain()
            return
        last_version = -1
        while True:
            if entry.version != last_version:
                last_version = entry.version
                writer.write(protocol.encode(protocol.response(
                    protocol.OK, **entry.status_dict())))
                await writer.drain()
            if entry.terminal:
                return
            await asyncio.sleep(0.05)

    def healthz(self) -> Dict[str, Any]:
        """Liveness + saturation — always served inline by the event
        loop, never queued behind simulation work."""
        self._update_gauges()
        snapshot = self.registry.snapshot(collect=False)
        return protocol.response(
            protocol.OK,
            live=True,
            uptime_s=round(time.time() - self.started_at, 2),
            host=host_snapshot(),
            endpoint=self.endpoint,
            fingerprint=self.fingerprint[:16],
            queue={"depth": self.queue.qsize(),
                   "pending": self._pending,
                   "capacity": self.config.max_pending},
            saturation=snapshot.gauges.get("serve.saturation", 0.0),
            service_rate_jobs_per_s=round(self.service_rate(), 3),
            latency={
                "queue_wait_ms": self.queue_wait_hist.percentiles(),
                "run_ms": self.run_hist.percentiles(),
            },
            workers=[shard.healthz() for shard in self.shards],
            counters={k: v for k, v in snapshot.counters.items()
                      if k.startswith(("serve.", "jobs."))},
            jobs={state: sum(1 for e in self.table.values()
                             if e.state == state)
                  for state in (QUEUED, RUNNING, RETRY_WAIT, DONE,
                                FAILED)},
        )
