"""Supervised worker shards for the serve pool.

Each shard owns one worker **process** (crash isolation: a SIGKILL, a
segfault-class failure or a runaway job takes down the shard's worker,
never the service) plus the parent-side supervision state machine:

- **spawn**: fork a worker running :func:`_worker_main`, a loop that
  receives ``("job", ...)`` frames over a pipe, executes the registered
  sweep task (same :func:`repro.harness.parallel._worker` the sweep
  runner uses — stderr captured, exceptions become records), and sends
  ``("done", ...)`` frames back;
- **detect death**: the parent's pump thread blocks in ``conn.recv()``;
  a dead worker surfaces as ``EOFError``/``OSError`` which the shard
  reports as a crash, together with whatever job was in flight;
- **respawn with backoff**: consecutive crash-respawns wait
  ``RetryPolicy.delay(k)`` (exponential + jitter, so a pool whose
  workers all died together does not thundering-herd the host); a
  completed job resets the streak;
- **deadline kills**: the service's reaper calls :meth:`Shard.kill`
  with a reason; the kill then flows through the same crash path, so
  deadline enforcement and chaos SIGKILLs are literally the same code.

The shard never decides a job's fate — it reports outcomes upward and
the service applies the retry budget (and checkpoint-resume plumbing)
exactly as the sweep runner would.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from typing import Any, Optional, Tuple

#: Parent-side view of the worker lifecycle (exported on /healthz).
STATE_STARTING = "starting"
STATE_IDLE = "idle"
STATE_BUSY = "busy"
STATE_BACKOFF = "backoff"
STATE_STOPPED = "stopped"


def _worker_main(conn) -> None:
    """Worker-process entry: execute jobs until told to stop.

    SIGINT is ignored (the supervisor owns teardown; a Ctrl-C on the
    server terminal must not race the parent's graceful drain), and the
    final state of every job is delivered as a frame — exceptions are
    records, never worker deaths (only SIGKILL-class events kill a
    worker, which is exactly what supervision is for).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.harness.parallel import _worker
    conn.send(("ready", None))
    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break
        if frame[0] == "stop":
            break
        # Job frames are ("job", key, task, params[, trace]): the trace
        # context is a protocol addition, so a 4-tuple from an older
        # parent still executes.
        _, job_key, task, params = frame[:4]
        trace = frame[4] if len(frame) > 4 else None
        if trace is not None:
            params = dict(params)
            params["_trace"] = trace
        status, payload, duration, stderr_tail = _worker(task, params)
        try:
            conn.send(("done", job_key, status, payload, duration,
                       stderr_tail))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class Shard:
    """One supervised worker slot: process + pipe + lifecycle state."""

    def __init__(self, index: int):
        self.index = index
        self.state = STATE_STOPPED
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        #: Key of the job currently on the worker, if any.
        self.current_key: Optional[str] = None
        #: Monotonic deadline for the in-flight job (None = unbounded).
        self.deadline: Optional[float] = None
        #: Reason recorded by :meth:`kill` so the crash path can label
        #: the attempt ("deadline" vs plain worker death).
        self.kill_reason: Optional[str] = None
        #: Consecutive crash streak driving respawn backoff.
        self.crashes = 0
        #: Lifetime spawn count (healthz).
        self.spawns = 0
        self.jobs_done = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def spawn(self) -> None:
        """Start a fresh worker process for this shard."""
        parent, child = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_worker_main, args=(child,),
            name=f"darco-serve-worker-{self.index}", daemon=True)
        self.process.start()
        child.close()
        self.conn = parent
        self.state = STATE_STARTING
        self.spawns += 1
        self.kill_reason = None

    def send_job(self, job_key: str, task: str, params: dict,
                 deadline_s: Optional[float],
                 trace: Optional[dict] = None) -> None:
        self.current_key = job_key
        self.deadline = (time.monotonic() + deadline_s
                         if deadline_s else None)
        self.state = STATE_BUSY
        if trace is not None:
            self.conn.send(("job", job_key, task, params, trace))
        else:
            self.conn.send(("job", job_key, task, params))

    def abort_dispatch(self) -> None:
        """Forget a dispatch that never reached the worker (the frame
        could not be sent, e.g. unpicklable params): the worker is still
        idle and usable, only the parent-side bookkeeping rolls back."""
        self.current_key = None
        self.deadline = None
        self.state = STATE_IDLE

    def recv(self) -> Optional[Tuple[Any, ...]]:
        """Blocking receive (run in a thread); ``None`` = worker died."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return None

    def kill(self, reason: str) -> bool:
        """SIGKILL the worker (deadline enforcement, chaos testing).
        Returns False when there was no live worker to kill."""
        if not self.alive:
            return False
        if self.kill_reason is None:
            self.kill_reason = reason
        self.process.kill()
        return True

    def note_job_done(self) -> None:
        self.current_key = None
        self.deadline = None
        self.state = STATE_IDLE
        self.crashes = 0
        self.jobs_done += 1

    def take_crash_context(self) -> Tuple[Optional[str], Optional[str]]:
        """Consume (job_key, kill_reason) for a just-detected death."""
        key, reason = self.current_key, self.kill_reason
        self.current_key = None
        self.deadline = None
        self.kill_reason = None
        return key, reason

    def reap(self) -> None:
        """Close the pipe and collect the dead process."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
            self.process = None

    def stop(self) -> None:
        """Graceful stop: ask the worker to exit, then reap it."""
        if self.conn is not None and self.alive:
            try:
                self.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self.reap()
        self.state = STATE_STOPPED

    def healthz(self) -> dict:
        return {
            "index": self.index,
            "state": self.state,
            "alive": self.alive,
            "pid": self.pid,
            "spawns": self.spawns,
            "crashes_streak": self.crashes,
            "jobs_done": self.jobs_done,
            "busy_with": self.current_key,
        }
