"""Per-job flight recorder: the last-moments buffer for postmortems.

When a job fails or is killed, the interesting evidence — which shard
ran it, how long each attempt took, what the service observed between
attempts, how the counters moved — is scattered across log lines that
a long-lived service has long since rotated away.  The flight recorder
fixes that: every job carries a small bounded ring of recent lifecycle
events (spans, incidents, counter deltas) that costs a few KB while
the job is alive and is *attached to the job's record* the moment it
reaches a terminal failure, then embedded in any repro bundle written
for it.

Bounded by construction: the ring holds ``capacity`` entries and
counts what it dropped, so a job that thrashes through hundreds of
retries still carries a fixed-size recorder — the bound is the
feature (DESIGN.md §13).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, Optional

#: Default ring capacity (events kept per job).
DEFAULT_CAPACITY = 64

#: Entry kinds.
SPAN = "span"          # a timed phase (queue wait, attempt)
INCIDENT = "incident"  # something went wrong (death, kill, error)
COUNTERS = "counters"  # a counter-delta snapshot (e.g. job digest)
MARK = "mark"          # plain lifecycle marker


class FlightRecorder:
    """Bounded ring of recent per-job events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(4, int(capacity))
        self._ring: deque = deque(maxlen=self.capacity)
        self.dropped = 0
        self.recorded = 0

    def _push(self, entry: Dict[str, Any]) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(entry)
        self.recorded += 1

    def record(self, kind: str, name: str, **detail: Any) -> None:
        """One event; ``detail`` must stay JSON-able (it rides in job
        records and repro bundles)."""
        self._push({"t": round(time.time(), 6), "kind": kind,
                    "name": name, **detail})

    def span(self, name: str, dur_ms: float, **detail: Any) -> None:
        self.record(SPAN, name, dur_ms=round(float(dur_ms), 3), **detail)

    def incident(self, name: str, **detail: Any) -> None:
        self.record(INCIDENT, name, **detail)

    def counters(self, name: str, deltas: Optional[Dict[str, int]],
                 **detail: Any) -> None:
        """A counter-delta snapshot (zero deltas are elided — the ring
        is too small for noise)."""
        deltas = {k: v for k, v in (deltas or {}).items() if v}
        self.record(COUNTERS, name, deltas=deltas, **detail)

    def mark(self, name: str, **detail: Any) -> None:
        self.record(MARK, name, **detail)

    def __len__(self) -> int:
        return len(self._ring)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able dump: what gets attached to failed job records and
        embedded in repro bundles."""
        return {"capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "events": list(self._ring)}
