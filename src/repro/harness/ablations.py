"""Ablation studies for the design choices of paper §III / §V-D.

Each ablation toggles one mechanism and reports its effect:

- chaining / IBTC: TOL invocations and overhead;
- loop unrolling: SBM emulation cost and host instruction count;
- memory speculation: speculated pairs, failures, reordering benefit;
- optimization passes: emulation cost with passes removed;
- promotion thresholds: mode distribution trade-off (startup delay
  discussion of §III);
- issue width (wide in-order design point): IPC and performance/watt via
  the power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.power.model import PowerModel
from repro.system.controller import run_codesigned
from repro.timing.config import TimingConfig
from repro.timing.run import run_with_timing
from repro.tol.config import TolConfig
from repro.workloads import get_workload


@dataclass
class AblationRow:
    label: str
    metrics: Dict[str, float]


def _run(workload_name: str, scale: float, config: TolConfig):
    program = get_workload(workload_name).program(scale=scale)
    result, controller = run_codesigned(program, config=config,
                                        validate=False)
    return result, controller.codesigned.tol


def ablate_chaining(workload_name: str = "429.mcf",
                    scale: float = 0.4) -> List[AblationRow]:
    rows = []
    for label, chaining, ibtc in (
            ("both on", True, True),
            ("no chaining", False, True),
            ("no IBTC", True, False),
            ("both off", False, False)):
        config = TolConfig(chaining_enable=chaining, ibtc_enable=ibtc)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "tol_overhead": tol.overhead_fraction(),
            "cc_lookups": tol.overhead.counters["cc_lookup"],
            "chains": tol.stats.chains_made,
            "ibtc_hits": tol.host.ibtc.hits,
        }))
    return rows


def ablate_unrolling(workload_name: str = "473.astar",
                     scale: float = 0.4) -> List[AblationRow]:
    rows = []
    for label, unroll in (("unroll on", True), ("unroll off", False)):
        config = TolConfig(unroll_enable=unroll)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "emulation_cost_sbm": tol.emulation_cost_sbm(),
            "loops_unrolled": tol.translator.loops_unrolled,
            "app_host_insns": tol.app_host_insns,
        }))
    return rows


def ablate_speculation(workload_name: str = "471.omnetpp",
                       scale: float = 0.4) -> List[AblationRow]:
    rows = []
    for label, spec in (("speculation on", True), ("speculation off",
                                                   False)):
        config = TolConfig(mem_speculation=spec)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "speculated_pairs": tol.translator.speculated_pairs,
            "spec_failures": tol.stats.spec_failures,
            "app_host_insns": tol.app_host_insns,
        }))
    return rows


def ablate_optimizations(workload_name: str = "433.milc",
                         scale: float = 0.4) -> List[AblationRow]:
    pipelines = {
        "full pipeline": ("constfold", "constprop", "cse", "constprop",
                          "dce"),
        "no CSE/RLE": ("constfold", "constprop", "dce"),
        "DCE only": ("dce",),
        "no optimization": (),
    }
    rows = []
    for label, passes in pipelines.items():
        config = TolConfig(sbm_passes=passes)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "emulation_cost_sbm": tol.emulation_cost_sbm(),
            "app_host_insns": tol.app_host_insns,
        }))
    return rows


def sweep_thresholds(workload_name: str = "ragdoll",
                     scale: float = 1.0) -> List[AblationRow]:
    """Startup-delay trade-off: aggressive promotion reduces IM time but
    pays more translation overhead (paper §III, Startup Delay)."""
    rows = []
    for bbm, sbm in ((2, 8), (5, 25), (10, 60), (30, 200)):
        config = TolConfig(bbm_threshold=bbm, sbm_threshold=sbm)
        result, tol = _run(workload_name, scale, config)
        dist = tol.mode_distribution()
        total = sum(dist.values()) or 1
        rows.append(AblationRow(f"bbm={bbm} sbm={sbm}", {
            "im_share": dist["IM"] / total,
            "sbm_share": dist["SBM"] / total,
            "translator_overhead": (
                tol.overhead.counters["bb_translator"]
                + tol.overhead.counters["sb_translator"]),
            "tol_overhead": tol.overhead_fraction(),
        }))
    return rows


def sweep_issue_width(workload_name: str = "429.mcf",
                      scale: float = 0.25,
                      widths=(1, 2, 4)) -> List[AblationRow]:
    """Wide in-order design point (§III): IPC and performance/watt."""
    rows = []
    for width in widths:
        timing = TimingConfig(issue_width=width,
                              fetch_width=max(4, width * 2))
        timing.units = dict(timing.units)
        timing.units["simple"] = (width, 1, True)
        program = get_workload(workload_name).program(scale=scale)
        result, controller, core = run_with_timing(
            program, timing_config=timing, include_tol_overhead=True,
            validate=False)
        stats = core.finalize()
        report = PowerModel(timing).report(core)
        perf = 1.0 / max(1, stats.cycles)
        watt = max(1e-9, report.average_power_w)
        rows.append(AblationRow(f"width={width}", {
            "ipc": stats.ipc,
            "cycles": stats.cycles,
            "avg_power_w": watt,
            "perf_per_watt": perf / watt,
            "energy_pj": report.total_energy_pj,
        }))
    return rows


def ablate_startup_delay(workload_name: str = "ragdoll",
                         scale: float = 0.3) -> List[AblationRow]:
    """Crusoe vs Denver startup (SIII): software interpretation vs a
    hardware dual decoder for cold code."""
    rows = []
    for label, dual in (("software interp", False), ("dual decoder", True)):
        config = TolConfig(dual_decoder=dual)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "interp_overhead": tol.overhead.counters["interpreter"],
            "tol_overhead": tol.overhead_fraction(),
            "app_host_insns": tol.app_host_insns,
            "total_host_insns": tol.app_host_insns
            + tol.tol_overhead_insns,
        }))
    return rows


def sweep_alias_table(workload_name: str = "471.omnetpp",
                      scale: float = 0.4,
                      sizes=(1, 4, 32)) -> List[AblationRow]:
    """Alias-table size x search policy (SIII, Speculative Execution):
    small tables fail conservatively; serial search pays per entry."""
    rows = []
    for size in sizes:
        for serial in (False, True):
            config = TolConfig(alias_table_size=size,
                               alias_serial_search=serial)
            result, tol = _run(workload_name, scale, config)
            label = f"{size} {'serial' if serial else 'parallel'}"
            rows.append(AblationRow(label, {
                "spec_failures": tol.stats.spec_failures,
                "search_insns": tol.host.alias_search_insns,
                "app_host_insns": tol.app_host_insns,
            }))
    return rows


def ablate_background_translation(workload_name: str = "ragdoll",
                                  scale: float = 0.5) -> List[AblationRow]:
    """When/where to translate (SIII): dedicated translation core."""
    rows = []
    for label, bg in (("inline", False), ("background core", True)):
        config = TolConfig(background_translation=bg)
        result, tol = _run(workload_name, scale, config)
        rows.append(AblationRow(label, {
            "tol_overhead": tol.overhead_fraction(),
            "background_insns": tol.background_translation_insns,
            "main_stream_insns": tol.app_host_insns
            + tol.tol_overhead_insns,
        }))
    return rows


#: Registry of every ablation/sweep study, for declarative fan-out.
ABLATIONS = {
    "chaining": ablate_chaining,
    "unrolling": ablate_unrolling,
    "speculation": ablate_speculation,
    "optimizations": ablate_optimizations,
    "thresholds": sweep_thresholds,
    "issue_width": sweep_issue_width,
    "startup_delay": ablate_startup_delay,
    "alias_table": sweep_alias_table,
    "background_translation": ablate_background_translation,
}


def run_ablation(name: str, **kwargs) -> List[AblationRow]:
    """Run one registered ablation by name (the sweep-task entry point)."""
    fn = ABLATIONS.get(name)
    if fn is None:
        raise KeyError(f"unknown ablation {name!r}; "
                       f"registered: {', '.join(sorted(ABLATIONS))}")
    return fn(**kwargs)


def run_ablations(names=None, jobs=None, use_cache: bool = False,
                  cache_dir=None, progress=None,
                  params=None) -> Dict[str, List[AblationRow]]:
    """Fan the registered ablations out via the parallel sweep runner.

    ``params`` optionally maps an ablation name to extra kwargs (e.g.
    ``{"chaining": {"scale": 0.2}}``).  Returns ``{name: rows}``; any
    failed study raises with its error record.
    """
    from repro.harness.parallel import (
        DEFAULT_CACHE_DIR, SweepJob, raise_on_errors, sweep,
    )
    names = list(names if names is not None else ABLATIONS)
    params = params or {}
    sweep_jobs = [
        SweepJob(task="ablation",
                 params={"name": name, **params.get(name, {})},
                 label=f"ablation:{name}")
        for name in names]
    results = sweep(
        sweep_jobs, n_jobs=jobs, use_cache=use_cache,
        cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        progress=progress)
    return dict(zip(names, raise_on_errors(results)))


def format_rows(rows: List[AblationRow]) -> str:
    if not rows:
        return "(no rows)"
    keys = list(rows[0].metrics)
    header = f"{'config':<18}" + "".join(f"{k:>20}" for k in keys)
    lines = [header]
    for row in rows:
        cells = []
        for key in keys:
            value = row.metrics[key]
            if isinstance(value, float):
                cells.append(f"{value:>20.4g}")
            else:
                cells.append(f"{value:>20}")
        lines.append(f"{row.label:<18}" + "".join(cells))
    return "\n".join(lines)
