"""Shared retry policy: bounded attempts, exponential backoff, jitter.

The sweep runner grew a hard-coded "one isolated retry" in PR 2; the
serve worker pool needs the same decision — *is this failure worth
another attempt, and how long do we wait first?* — for job retries,
worker respawns and client retry-after hints.  :class:`RetryPolicy`
centralizes that decision so both layers (``darco sweep`` and
``darco serve``) degrade the same way.

Backoff is exponential with full-range jitter::

    delay(k) = min(max_delay_s, base_delay_s * backoff**(k-1)) * U

where ``U`` is uniform in ``[1 - jitter, 1]``.  Jitter draws come from
a private :class:`random.Random` seeded per call site (never the global
RNG: simulated quantities must stay bit-identical whether or not the
harness retried anything around them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a harness layer retries failed/crashed/timed-out work.

    ``max_attempts``
        Total tries including the first (``1`` = never retry).
    ``base_delay_s`` / ``backoff`` / ``max_delay_s``
        Exponential backoff shape for the wait before attempt ``k+1``.
    ``jitter``
        Fraction of each delay randomized away (``0.5`` = the delay
        lands uniformly in ``[0.5d, d]``), decorrelating simultaneous
        retriers (thundering-herd control for the worker pool).
    ``deadline_s``
        Per-attempt wall-clock budget; ``None`` = unbounded.  The sweep
        runner maps its ``timeout`` here; the serve reaper enforces it
        by killing the worker.
    """

    max_attempts: int = 2
    base_delay_s: float = 0.05
    backoff: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.5
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0.0 or self.max_delay_s < 0.0:
            raise ValueError("delays must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def allows(self, attempts_made: int) -> bool:
        """May another attempt be made after ``attempts_made`` tries?"""
        return attempts_made < self.max_attempts

    def delay(self, failures: int, rng: Optional[random.Random] = None,
              seed=None) -> float:
        """Backoff delay (seconds) before the retry that follows the
        ``failures``-th consecutive failure (1-based).

        Deterministic when ``rng`` or ``seed`` is given; otherwise a
        fresh unseeded RNG supplies the jitter draw.
        """
        if failures < 1:
            return 0.0
        raw = self.base_delay_s * (self.backoff ** (failures - 1))
        raw = min(self.max_delay_s, raw)
        if not self.jitter:
            return raw
        if rng is None:
            rng = random.Random(seed) if seed is not None else random.Random()
        return raw * (1.0 - self.jitter * rng.random())

    def retry_after_hint(self, queue_depth: int, service_rate: float,
                         floor_s: float = 1.0, cap_s: float = 60.0) -> float:
        """A client-facing "come back in N seconds" estimate for load
        shedding: queued work over the observed service rate, clamped.
        ``service_rate`` is jobs/second across the pool (0 = unknown)."""
        if service_rate <= 0.0:
            return cap_s if queue_depth else floor_s
        estimate = queue_depth / service_rate
        return max(floor_s, min(cap_s, estimate))


#: The sweep runner's historical behaviour: one isolated retry, no wait.
SWEEP_DEFAULT = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
