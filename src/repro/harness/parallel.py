"""Parallel sweep runner with a persistent, content-addressed result cache.

The paper ran DARCO's evaluation as thousands of independent simulations
fanned out on a cluster (§VI); every figure, ablation and case study in
this reproduction is likewise an embarrassingly parallel bag of
independent runs.  :func:`sweep` is the one fan-out point they all share:

- jobs are declarative :class:`SweepJob` records (a registered task name
  plus picklable keyword arguments), so they cross process boundaries and
  hash cleanly;
- execution fans out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``n_jobs``, default ``os.cpu_count()``); ``n_jobs=1`` runs inline with
  the exact same task functions, so parallelism changes wall-clock only;
- results are memoized in an on-disk cache (``.repro_cache/`` by default)
  keyed by a content hash of the task name, its arguments (configs are
  serialized field by field) and a fingerprint of the whole ``src/repro``
  source tree — any source or config change invalidates cleanly, and an
  unchanged run is an instant replay;
- robustness is per task: a worker exception, crash or timeout degrades
  that one job to an error record (after one isolated retry) without
  killing the sweep.

Results come back as :class:`SweepResult` records in job order; cached
values are plain pickled dataclasses (``KernelMetrics`` et al.) that
round-trip losslessly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import time
import traceback
from collections import Counter, deque
from contextlib import redirect_stderr
from concurrent.futures import (
    ProcessPoolExecutor, TimeoutError as FuturesTimeout, as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.harness.retry import RetryPolicy, SWEEP_DEFAULT

#: Bump when the cache record layout changes (invalidates old entries).
CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"

_MISS = object()


# ---------------------------------------------------------------------------
# Harness-side error accounting.
# ---------------------------------------------------------------------------

#: Structured counters for exceptions the sweep machinery absorbs
#: (``sweep.errors.*`` namespace).  Expected, narrow error classes —
#: cache corruption, worker teardown — are handled in place; anything
#: *outside* those classes is still absorbed where crashing would kill
#: an unrelated thousand-run campaign, but lands in
#: ``sweep.errors.swallowed`` with its summary in
#: :data:`SWEEP_ERROR_LOG`, so nothing disappears silently.
SWEEP_ERROR_COUNTERS: Counter = Counter()
#: Most recent absorbed unexpected exceptions, newest last, as
#: ``(context, exception summary)`` pairs.
SWEEP_ERROR_LOG: deque = deque(maxlen=32)


def _record_swallowed(context: str) -> None:
    """Count (and remember) an exception absorbed outside its expected
    error classes."""
    SWEEP_ERROR_COUNTERS["sweep.errors.swallowed"] += 1
    summary = traceback.format_exc().strip().splitlines()[-1]
    SWEEP_ERROR_LOG.append((context, summary))


#: Error classes a damaged, truncated or stale cache entry is expected
#: to raise while unpickling (``IndexError``/``AttributeError``/
#: ``ImportError`` cover records written by a different code version).
CACHE_CORRUPTION_ERRORS = (
    pickle.UnpicklingError, EOFError, OSError, ValueError,
    AttributeError, ImportError, IndexError,
)


# ---------------------------------------------------------------------------
# Content addressing: code fingerprint + job keys.
# ---------------------------------------------------------------------------

#: Root of the source tree covered by the fingerprint.
SOURCE_ROOT = Path(__file__).resolve().parents[1]

_fingerprint_cache: Optional[str] = None


def code_fingerprint(root: Optional[Path] = None) -> str:
    """SHA-256 over every ``*.py`` under ``src/repro`` (path + content).

    Computed once per process for the default root; any source change
    yields a different digest and therefore different cache keys.
    """
    global _fingerprint_cache
    if root is None and _fingerprint_cache is not None:
        return _fingerprint_cache
    base = Path(root) if root is not None else SOURCE_ROOT
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(path.relative_to(base).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()
    if root is None:
        _fingerprint_cache = result
    return result


def serialize_params(value: Any) -> Any:
    """JSON-able projection of task parameters for hashing.

    Dataclasses (``TolConfig``, ``TimingConfig``, nested cache configs)
    are expanded field by field with their class name, so any field change
    changes the key; unknown objects fall back to ``repr``.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: serialize_params(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, dict):
        return {str(k): serialize_params(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [serialize_params(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ---------------------------------------------------------------------------
# Jobs and results.
# ---------------------------------------------------------------------------


@dataclass
class SweepJob:
    """One unit of sweep work: a registered task plus picklable kwargs."""

    task: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self):
        if not self.label:
            hint = self.params.get("workload") or self.params.get("name")
            self.label = f"{self.task}:{hint}" if hint else self.task

    def key(self, fingerprint: Optional[str] = None) -> str:
        payload = {
            "version": CACHE_VERSION,
            "task": self.task,
            "params": serialize_params(self.params),
            "code": fingerprint if fingerprint is not None
            else code_fingerprint(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class SweepResult:
    """Outcome of one job: a value, or an error record (never both)."""

    job: SweepJob
    value: Any = None
    error: Optional[str] = None
    cached: bool = False
    attempts: int = 0
    duration_s: float = 0.0
    #: Tail of the worker's captured stderr — populated only on failure
    #: (successful and cached results keep it empty, so sweep artifacts
    #: stay byte-identical across resumes).
    stderr_tail: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None


# ---------------------------------------------------------------------------
# Task registry (the only things workers execute).
# ---------------------------------------------------------------------------

_TASKS: Dict[str, Callable] = {}
#: Tasks that accept a ``_checkpoint`` execution parameter (a
#: ``{"dir", "every", "resume"}`` mapping) and can resume a killed or
#: timed-out attempt from its last checkpoint.
_CHECKPOINTABLE: set = set()


def register_task(name: str, checkpointable: bool = False):
    """Register a sweep task under ``name`` (module-level, picklable).

    ``checkpointable`` tasks additionally receive a ``_checkpoint``
    execution parameter when the sweep runs with a checkpoint
    directory; it never participates in the cache key (the key hashes
    the *logical* job, not where its resume points live)."""
    def wrap(fn):
        _TASKS[name] = fn
        if checkpointable:
            _CHECKPOINTABLE.add(name)
        return fn
    return wrap


@register_task("workload_metrics")
def _task_workload_metrics(workload: str, scale: float = 1.0,
                           config=None, validate: bool = True):
    from repro.harness.figures import run_workload_metrics
    from repro.workloads import get_workload
    return run_workload_metrics(get_workload(workload), scale=scale,
                                config=config, validate=validate)


@register_task("timing_report")
def _task_timing_report(workload: str, scale: float = 1.0, config=None,
                        validate: bool = True, annotate=None):
    """Detailed-timing run; the value is the core's cycle report plus
    run identity fields.  Deterministic: the report is bit-identical
    across repeats, job counts, and the annotation fast path (the
    differential suite in tests/test_timing_annotation.py holds the
    paths to identity)."""
    from repro.timing.run import run_with_timing
    from repro.workloads import get_workload
    program = get_workload(workload).program(scale=scale)
    result, _controller, core = run_with_timing(
        program, tol_config=config, validate=validate, annotate=annotate)
    report = core.report()
    report["exit_code"] = result.exit_code
    report["guest_icount"] = result.guest_icount
    return report


@register_task("ablation")
def _task_ablation(name: str, **kwargs):
    from repro.harness.ablations import run_ablation
    return run_ablation(name, **kwargs)


@register_task("speed")
def _task_speed(workload: str = "429.mcf", scale: float = 0.5, config=None):
    from repro.harness.speed import measure_speed
    return measure_speed(workload_name=workload, scale=scale,
                         config=config)


@register_task("warmup_case")
def _task_warmup_case(workload: str = "473.astar", **kwargs):
    from repro.harness.warmup_case import run_case_study
    return run_case_study(workload_name=workload, **kwargs)


@register_task("fault_run")
def _task_fault_run(site: str, ordinal: int, salt: int,
                    mode: str = "recover", config_overrides=None):
    from repro.resilience.campaign import run_fault_case
    return run_fault_case(site, ordinal, salt, mode=mode,
                          config_overrides=config_overrides)


@register_task("fuzz_case")
def _task_fuzz_case(program: Dict, base_overrides=None, fault=None,
                    os_stdin_b64: str = "", os_seed: int = 0x5EED,
                    max_events: int = 100_000, step_cap: int = 400_000,
                    timing: bool = False, sanitize: bool = True,
                    repro_dir=None):
    """One fuzz candidate through the differential oracle matrix; the
    value is a plain ``FuzzOutcome`` dict (classification, coverage
    edges, finding metadata).  Pure per-candidate: results are
    identical at any ``n_jobs``."""
    import base64
    from dataclasses import asdict
    from repro.fuzz.oracle import evaluate_candidate
    from repro.snapshot.serialize import program_from_dict
    outcome = evaluate_candidate(
        program_from_dict(program),
        base_overrides=base_overrides, fault=fault,
        os_stdin=base64.b64decode(os_stdin_b64 or ""),
        os_seed=os_seed, max_events=max_events, step_cap=step_cap,
        timing=timing, sanitize=sanitize, repro_dir=repro_dir)
    return asdict(outcome)


@register_task("arch_run", checkpointable=True)
def _task_arch_run(workload: str, scale: float = 1.0, config=None,
                   validate: bool = True, _checkpoint=None):
    """Architectural run with checkpoint/resume support: the value is an
    :class:`~repro.snapshot.runner.ArchResult`, bit-identical whether
    the run completed in one attempt or resumed from a checkpoint."""
    from repro.snapshot.runner import run_checkpointed
    from repro.workloads import get_workload
    program = get_workload(workload).program(scale=scale)
    ck = _checkpoint or {}
    value, _ = run_checkpointed(
        program, config=config, validate=validate,
        checkpoint_dir=ck.get("dir"),
        checkpoint_every=ck.get("every", 1),
        resume=ck.get("resume", False))
    return value


def _execute(task: str, params: Dict[str, Any]):
    fn = _TASKS.get(task)
    if fn is None:
        raise KeyError(f"unknown sweep task {task!r}; "
                       f"registered: {', '.join(sorted(_TASKS))}")
    return fn(**params)


#: How much captured worker stderr a failure record keeps.
STDERR_TAIL_CHARS = 2000


def _worker(task: str, params: Dict[str, Any]):
    """Top-level worker entry (picklable); exceptions become records.

    Worker stderr is captured so a failing task's diagnostics (warnings,
    native-layer complaints) survive the process boundary; only the tail
    is kept, and only for failures.

    An optional ``_trace`` exec param (a distributed trace context from
    ``darco serve``) is consumed here, never passed to the task: like
    ``_checkpoint`` it is execution plumbing, excluded from job identity.
    While the job runs the context is active process-wide, so Telemetry
    hubs adopt span tracers; at the end one ``attempt`` span plus every
    collected tracer's events are flushed to the worker's span file.
    """
    start = time.perf_counter()
    captured = io.StringIO()
    trace_wire = params.pop("_trace", None) if isinstance(params, dict) \
        else None
    ctx = writer = None
    if trace_wire is not None:
        try:
            from repro.telemetry import tracectx
            ctx = tracectx.TraceContext.from_wire(trace_wire.get("ctx"))
            if ctx is not None and ctx.mode != "off":
                writer = tracectx.SpanFileWriter(
                    trace_wire.get("dir", tracectx.DEFAULT_TRACE_DIR),
                    "worker")
                tracectx.activate(ctx)
            else:
                ctx = None
        except Exception:
            ctx = writer = None  # tracing must never fail a job
    start_us = None
    if ctx is not None:
        from repro.telemetry.tracectx import epoch_us
        start_us = epoch_us()
        try:
            # Flushed before execution, so an attempt killed mid-run
            # (SIGKILL, deadline) still leaves its start on the
            # timeline; the closing "attempt" span below only exists
            # for attempts that survive.
            resume = bool((params.get("_checkpoint") or {})
                          .get("resume")) \
                if isinstance(params, dict) else False
            writer.instant("attempt_start", "worker", ctx=ctx,
                           ts_us=start_us, task=task, resume=resume)
        except Exception:
            pass
    try:
        with redirect_stderr(captured):
            value = _execute(task, params)
        result = ("ok", value, time.perf_counter() - start, "")
    except Exception:
        result = ("error", traceback.format_exc(),
                  time.perf_counter() - start,
                  captured.getvalue()[-STDERR_TAIL_CHARS:])
    if ctx is not None:
        try:
            from repro.telemetry import tracectx
            from repro.telemetry.tracectx import epoch_us
            tracers = tracectx.deactivate()
            resume = bool((params.get("_checkpoint") or {}).get("resume")) \
                if isinstance(params, dict) else False
            writer.complete(
                "attempt", "worker", start_us, epoch_us(), ctx=ctx,
                task=task, status=result[0], resume=resume)
            for tracer in tracers:
                writer.tracer_events(tracer, ctx=ctx)
        except Exception:
            pass
    return result


# ---------------------------------------------------------------------------
# Persistent on-disk cache.
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed pickle store: ``<dir>/<key[:2]>/<key>.pkl``.

    Entries are written atomically (temp file + rename); a corrupted,
    truncated or key-mismatched entry reads as a miss and is dropped.
    """

    def __init__(self, directory=DEFAULT_CACHE_DIR):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def cleanup_stale(self, max_age_s: float = 3600.0) -> int:
        """Drop orphaned temp files left by killed writers (see
        :func:`repro.ioutil.cleanup_stale_tmp`); returns count removed."""
        from repro.ioutil import cleanup_stale_tmp
        return cleanup_stale_tmp(self.directory, max_age_s)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Cached value for ``key``, or the module-level ``_MISS``."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                stored_key, value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return _MISS
        except CACHE_CORRUPTION_ERRORS:
            # Corrupted/truncated/stale entry: a miss, never a crash.
            return self._drop(path)
        except Exception:
            # Not an expected corruption signature.  Still degrade to a
            # miss — one bad entry must never kill a sweep — but record
            # it instead of losing it silently.
            _record_swallowed(f"cache.get:{key[:12]}")
            return self._drop(path)
        if stored_key != key:
            self.misses += 1
            return _MISS
        self.hits += 1
        return value

    def _drop(self, path: Path):
        """Remove an unreadable entry and account a miss."""
        self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass
        return _MISS

    def put(self, key: str, value: Any) -> None:
        from repro.ioutil import atomic_write_bytes
        atomic_write_bytes(
            self._path(key),
            pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------------------
# The sweep runner.
# ---------------------------------------------------------------------------


def _terminate(executor: ProcessPoolExecutor) -> None:
    for proc in list(getattr(executor, "_processes", {}).values()):
        try:
            proc.terminate()
        except OSError:
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _run_inline(job: SweepJob, params: Dict[str, Any]) -> SweepResult:
    status, payload, duration, stderr_tail = _worker(job.task, params)
    if status == "ok":
        return SweepResult(job=job, value=payload, attempts=1,
                           duration_s=duration)
    return SweepResult(job=job, error=payload, attempts=1,
                       duration_s=duration, stderr_tail=stderr_tail)


def _run_isolated(job: SweepJob, params: Dict[str, Any],
                  timeout: Optional[float]) -> SweepResult:
    """Run one job in its own single-worker pool: a crash or hang is
    contained to this job, and a hung worker is terminated."""
    executor = ProcessPoolExecutor(max_workers=1)
    start = time.perf_counter()
    try:
        future = executor.submit(_worker, job.task, params)
        try:
            status, payload, duration, stderr_tail = \
                future.result(timeout=timeout)
        except FuturesTimeout:
            return SweepResult(
                job=job, attempts=1, duration_s=time.perf_counter() - start,
                error=f"timed out after {timeout:.1f}s")
        except BrokenProcessPool:
            return SweepResult(
                job=job, attempts=1, duration_s=time.perf_counter() - start,
                error="worker process died (crash during task)")
        if status == "ok":
            return SweepResult(job=job, value=payload, attempts=1,
                               duration_s=duration)
        return SweepResult(job=job, error=payload, attempts=1,
                           duration_s=duration, stderr_tail=stderr_tail)
    finally:
        _terminate(executor)


def sweep(jobs: Iterable[SweepJob],
          n_jobs: Optional[int] = None,
          use_cache: bool = True,
          cache_dir=DEFAULT_CACHE_DIR,
          cache: Optional[ResultCache] = None,
          retries: Optional[int] = None,
          retry: Optional[RetryPolicy] = None,
          timeout: Optional[float] = None,
          progress: Optional[Callable] = None,
          checkpoint_dir=None,
          checkpoint_every: int = 1,
          resume: bool = False) -> List[SweepResult]:
    """Run ``jobs``, fanning out over processes, memoizing on disk.

    ``n_jobs``:   worker processes (default ``os.cpu_count()``); ``1``
                  runs inline in this process (identical results).
    ``use_cache``/``cache_dir``/``cache``: persistent result cache; pass
                  ``use_cache=False`` to both skip lookups and not write.
    ``retry``:    a :class:`~repro.harness.retry.RetryPolicy` governing
                  re-runs of failed/crashed/timed-out jobs (attempt
                  budget + backoff/jitter between attempts), each
                  attempt in its own isolated worker.  Default:
                  :data:`~repro.harness.retry.SWEEP_DEFAULT` (one
                  immediate retry — the historical behaviour).
    ``retries``:  legacy integer shorthand for ``retry`` (N extra
                  attempts, no backoff); ignored when ``retry`` is set.
    ``timeout``:  per-attempt seconds; enforced strictly on isolated
                  attempts and as a pool-wide deadline on the shared
                  pool.  Defaults to ``retry.deadline_s`` when unset.
    ``progress``: callable ``(result, done_count, total)`` invoked as
                  each job resolves (cache hits first).
    ``checkpoint_dir``: when set, checkpointable tasks write periodic
                  checkpoints under ``<dir>/<key16>/`` and a crashed or
                  timed-out attempt's retry resumes from the last one.
    ``checkpoint_every``: checkpoint cadence in validation boundaries.
    ``resume``:   start every checkpointable task from its last
                  checkpoint if one exists (crash-resumable sweeps:
                  rerun the same command after a kill and completed
                  tasks replay from cache while interrupted ones
                  continue where they stopped).

    Completed results are written to the cache eagerly, as each job
    resolves — a sweep killed mid-flight keeps everything it finished.
    """
    jobs = list(jobs)
    total = len(jobs)
    results: List[Optional[SweepResult]] = [None] * total
    done = 0

    policy = retry
    if policy is None:
        policy = SWEEP_DEFAULT if retries is None else RetryPolicy(
            max_attempts=max(0, retries) + 1,
            base_delay_s=0.0, jitter=0.0)
    if timeout is None:
        timeout = policy.deadline_s

    store = cache
    if store is None and use_cache and cache_dir is not None:
        store = ResultCache(cache_dir)
        store.cleanup_stale()
    fingerprint = code_fingerprint()
    keys = [job.key(fingerprint) for job in jobs]

    def resolve(index: int, result: SweepResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if store is not None and result.ok and not result.cached:
            store.put(keys[index], result.value)
        if progress is not None:
            progress(result, done, total)

    # Checkpoint plumbing: injected AFTER cache keys are computed, so the
    # key hashes the logical job only (where resume points live on disk
    # never changes a job's identity).
    exec_params: List[Dict[str, Any]] = [job.params for job in jobs]
    if checkpoint_dir is not None:
        base = Path(checkpoint_dir)
        for index, job in enumerate(jobs):
            if job.task in _CHECKPOINTABLE:
                exec_params[index] = {
                    **job.params,
                    "_checkpoint": {
                        "dir": str(base / keys[index][:16]),
                        "every": int(checkpoint_every),
                        "resume": bool(resume),
                    },
                }

    pending: List[int] = []
    for index, job in enumerate(jobs):
        if store is not None:
            value = store.get(keys[index])
            if value is not _MISS:
                resolve(index, SweepResult(job=job, value=value,
                                           cached=True))
                continue
        pending.append(index)

    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = max(1, int(n_jobs))

    failed: List[int] = []
    if pending and n_jobs == 1:
        for index in pending:
            result = _run_inline(jobs[index], exec_params[index])
            if result.ok:
                resolve(index, result)
            else:
                failed.append(index)
                results[index] = result
    elif pending:
        executor = ProcessPoolExecutor(max_workers=min(n_jobs,
                                                       len(pending)))
        future_map = {}
        try:
            for index in pending:
                job = jobs[index]
                future_map[executor.submit(_worker, job.task,
                                           exec_params[index])] = index
            # Shared-pool deadline: generous upper bound so one hung
            # worker cannot stall the sweep forever (strict per-task
            # timeouts are applied on the isolated retry attempts).
            deadline = None
            if timeout is not None:
                waves = -(-len(pending) // n_jobs)  # ceil division
                deadline = timeout * (waves + 1)
            try:
                for future in as_completed(future_map, timeout=deadline):
                    index = future_map.pop(future)
                    job = jobs[index]
                    try:
                        status, payload, duration, stderr_tail = \
                            future.result()
                    except BrokenProcessPool:
                        failed.append(index)
                        results[index] = SweepResult(
                            job=job, attempts=1,
                            error="worker process died "
                                  "(crash during task)")
                        continue
                    except Exception:
                        # Workers convert task exceptions to records, so
                        # anything raised *here* (result unpickling, pool
                        # teardown) is unexpected: count it, and surface
                        # it as this job's error record.
                        _record_swallowed(f"pool.result:{job.label}")
                        failed.append(index)
                        results[index] = SweepResult(
                            job=job, attempts=1,
                            error=traceback.format_exc())
                        continue
                    if status == "ok":
                        resolve(index, SweepResult(
                            job=job, value=payload, attempts=1,
                            duration_s=duration))
                    else:
                        failed.append(index)
                        results[index] = SweepResult(
                            job=job, error=payload, attempts=1,
                            duration_s=duration, stderr_tail=stderr_tail)
            except FuturesTimeout:
                for future, index in future_map.items():
                    failed.append(index)
                    results[index] = SweepResult(
                        job=jobs[index], attempts=1,
                        error=f"shared pool deadline exceeded "
                              f"({deadline:.1f}s)")
        finally:
            _terminate(executor)

    # Isolated retries under the policy: one bad workload degrades to
    # an error record after its attempt budget, with backoff + jitter
    # between attempts (jitter seeded by the job key, so the schedule
    # is reproducible per job and decorrelated across jobs).
    # Checkpointable tasks retry with resume forced on, so a retried
    # crash or timeout continues from its last checkpoint instead of
    # repaying the whole run.
    for index in failed:
        job = jobs[index]
        retry_params = exec_params[index]
        ck = retry_params.get("_checkpoint")
        if ck is not None:
            retry_params = {**retry_params,
                            "_checkpoint": {**ck, "resume": True}}
        result = results[index]
        failures = result.attempts if result else 1
        while result is not None and policy.allows(result.attempts):
            delay = policy.delay(failures, seed=keys[index])
            if delay > 0:
                time.sleep(delay)
            attempt = _run_isolated(job, retry_params, timeout)
            attempt.attempts = result.attempts + 1
            result = attempt
            if attempt.ok:
                break
            failures += 1
        resolve(index, result)

    return results


def retry_summary(results: List[SweepResult]) -> Dict[str, int]:
    """Retry accounting for a finished sweep: how many tasks needed
    more than one attempt, how many extra attempts were spent, and how
    many tasks were rescued (failed first, succeeded on a retry)."""
    retried = [r for r in results if r.attempts > 1]
    return {
        "tasks_retried": len(retried),
        "extra_attempts": sum(r.attempts - 1 for r in retried),
        "rescued": sum(1 for r in retried if r.ok),
    }


# ---------------------------------------------------------------------------
# Convenience: job builders and reporting.
# ---------------------------------------------------------------------------


def suite_sweep_jobs(scale: float = 1.0, config=None,
                     suites=None, workloads=None,
                     validate: bool = True,
                     task: str = "workload_metrics") -> List[SweepJob]:
    """One job of ``task`` per workload of the paper suite (or an
    explicit ``workloads`` name list).  ``task`` is ``workload_metrics``
    (performance counters) or ``arch_run`` (architectural results with
    checkpoint/resume support).

    Sweeps default to ``recovery_mode="recover"``: one bad translation
    should degrade one data point (with its incidents surfaced), not kill
    a thousand-run campaign.  Pass an explicit ``config`` to override.
    """
    if config is None:
        from repro.tol.config import TolConfig
        config = TolConfig(recovery_mode="recover")
    if workloads is None:
        from repro.workloads import SUITES, suite_workloads
        chosen = suites if suites is not None else SUITES
        workloads = [w.name for suite in chosen
                     for w in suite_workloads(suite)]
    return [SweepJob(task=task,
                     params={"workload": name, "scale": scale,
                             "config": config, "validate": validate},
                     label=name)
            for name in workloads]


#: Counters projected into the compact per-task telemetry digest.
DIGEST_COUNTERS = (
    "tol.guest_icount",
    "tol.translations.bb",
    "tol.translations.sb",
    "cache.hits",
    "cache.misses",
    "host.insns.committed",
    "host.fastpath.insns",
    "resilience.incidents",
    "controller.validations",
    "controller.recoveries",
)


def telemetry_digest(value: Any) -> Dict[str, int]:
    """Compact named-counter digest of a task value's telemetry.

    Accepts anything a sweep task returns: objects carrying a
    :class:`~repro.telemetry.TelemetrySnapshot` (``RunResult``) or an
    ``as_dict`` mapping (``KernelMetrics``).  Returns ``{}`` when the
    value carries no telemetry, so digests are safe to compute
    unconditionally.  Every digest value derives from simulated
    quantities — never wall clock — keeping sweep artifacts
    byte-identical across resumes and parallelism levels.
    """
    telem = getattr(value, "telemetry", None)
    if telem is None:
        return {}
    counters = getattr(telem, "counters", None)
    if counters is None and isinstance(telem, dict):
        counters = telem.get("counters", {})
    if not counters:
        return {}
    return {k: counters[k] for k in DIGEST_COUNTERS if k in counters}


def merged_telemetry(results: List[SweepResult]):
    """Fold the telemetry of every successful result into one
    :class:`~repro.telemetry.TelemetrySnapshot` (counters and histogram
    buckets sum, gauges keep the peak); ``None`` when no result carried
    telemetry."""
    from repro.telemetry import merge_snapshots
    snaps = []
    for result in results:
        if not result.ok:
            continue
        telem = getattr(result.value, "telemetry", None)
        if telem:
            snaps.append(telem)
    return merge_snapshots(snaps)


def _incident_note(value: Any) -> str:
    """`` incidents=N`` when the task's value carries a nonzero incident
    count (``KernelMetrics.extras`` or ``FaultRunRecord``-like objects)."""
    count = 0
    extras = getattr(value, "extras", None)
    if isinstance(extras, dict):
        count = extras.get("incidents", 0) or 0
    else:
        count = getattr(value, "incidents", 0) or 0
    return f" incidents={count}" if count else ""


def print_progress(result: SweepResult, done: int, total: int) -> None:
    """Default per-task progress line for CLI/benchmark drivers."""
    if result.ok:
        note = "cached" if result.cached else f"{result.duration_s:.2f}s"
        retry_note = (f" retries={result.attempts - 1}"
                      if result.attempts > 1 else "")
        print(f"[{done}/{total}] {result.job.label:<24} ok    ({note})"
              f"{_incident_note(result.value)}{retry_note}",
              flush=True)
    else:
        reason = result.error.strip().splitlines()[-1]
        print(f"[{done}/{total}] {result.job.label:<24} FAIL  "
              f"({result.attempts} attempts): {reason}", flush=True)


def raise_on_errors(results: List[SweepResult]) -> List[Any]:
    """Values of ``results`` in order; raises if any job failed."""
    errors = [r for r in results if not r.ok]
    if errors:
        detail = "\n".join(
            f"--- {r.job.label} ({r.attempts} attempts) ---\n{r.error}"
            for r in errors)
        raise RuntimeError(
            f"{len(errors)}/{len(results)} sweep jobs failed:\n{detail}")
    return [r.value for r in results]
