"""Warm-up methodology case study driver (paper §VI-E).

Compares a full detailed (timing) simulation against the sampled
methodology with threshold-downscaled TOL warm-up and the offline
distribution-matching heuristic.  Reports the simulation-cost reduction and
the CPI error (the paper: 65x at 0.75% average error; ours is measured on
scaled-down runs, so the reduction factor tracks the sampling ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sampling.warmup import WarmupSimulator, collect_bb_frequencies
from repro.timing.config import TimingConfig
from repro.timing.run import run_with_timing
from repro.tol.config import TolConfig
from repro.workloads import get_workload

PAPER_COST_REDUCTION = 65.0
PAPER_CPI_ERROR = 0.0075


@dataclass
class CaseStudyResult:
    workload: str
    full_cpi: float
    sampled_cpi: float
    cpi_error: float
    cost_reduction: float
    chosen_scale: float
    chosen_warmup: int

    def table(self) -> str:
        return "\n".join([
            f"workload           : {self.workload}",
            f"full detailed CPI  : {self.full_cpi:.3f}",
            f"sampled CPI        : {self.sampled_cpi:.3f}",
            f"CPI error          : {self.cpi_error:.2%} "
            f"(paper {PAPER_CPI_ERROR:.2%})",
            f"cost reduction     : {self.cost_reduction:.1f}x "
            f"(paper {PAPER_COST_REDUCTION:.0f}x)",
            f"heuristic choice   : scale {self.chosen_scale:.0f}x, "
            f"warm-up {self.chosen_warmup} insns",
        ])


def run_case_study(workload_name: str = "473.astar",
                   scale: float = 1.0,
                   n_samples: int = 4,
                   sample_length: int = 3000,
                   tol_config: Optional[TolConfig] = None,
                   timing_config: Optional[TimingConfig] = None,
                   ) -> CaseStudyResult:
    workload = get_workload(workload_name)
    program = workload.program(scale=scale)
    tol_config = tol_config if tol_config is not None else TolConfig()

    # Authoritative: full detailed simulation.
    result, controller, core = run_with_timing(
        program, tol_config=tol_config, timing_config=timing_config,
        include_tol_overhead=False, validate=False)
    full_stats = core.finalize()
    full_cpi = full_stats.cpi
    total_guest = result.guest_icount

    # Pick evenly spaced sample windows inside the run.
    stride = total_guest // (n_samples + 1)
    starts = [stride * (i + 1) for i in range(n_samples)]

    # Offline heuristic on the first sample: correlate warm-up BB
    # distributions against the authoritative one.
    sim = WarmupSimulator(get_workload(workload_name).program(scale=scale),
                          tol_config=tol_config,
                          timing_config=timing_config)
    authoritative = collect_bb_frequencies(
        get_workload(workload_name).program(scale=scale), 0, starts[0])
    short_warmup = max(150, sample_length // 10)
    candidates = [(1.0, short_warmup), (4.0, short_warmup),
                  (8.0, short_warmup), (8.0, sample_length)]
    chosen_scale, chosen_warmup = sim.pick_configuration(
        starts[0], candidates, authoritative, similarity_floor=0.85)

    sampled = sim.run_sampled(starts, sample_length, chosen_warmup,
                              chosen_scale)
    cpi_error = abs(sampled.cpi - full_cpi) / full_cpi if full_cpi else 0.0
    cost_reduction = total_guest / max(1, sampled.cost_guest_insns)
    return CaseStudyResult(
        workload=workload_name,
        full_cpi=full_cpi,
        sampled_cpi=sampled.cpi,
        cpi_error=cpi_error,
        cost_reduction=cost_reduction,
        chosen_scale=chosen_scale,
        chosen_warmup=chosen_warmup,
    )


def run_case_studies(workload_names=("473.astar", "429.mcf"),
                     jobs: Optional[int] = None,
                     use_cache: bool = False,
                     cache_dir=None,
                     progress=None,
                     **kwargs) -> dict:
    """:func:`run_case_study` over several workloads via the sweep runner
    (each full-detailed + sampled pair is one independent, cacheable
    task).  Extra ``kwargs`` are forwarded to every study.  Returns
    ``{name: CaseStudyResult}``."""
    from repro.harness.parallel import (
        DEFAULT_CACHE_DIR, SweepJob, raise_on_errors, sweep,
    )
    sweep_jobs = [
        SweepJob(task="warmup_case",
                 params={"workload": name, **kwargs},
                 label=f"warmup:{name}")
        for name in workload_names]
    results = sweep(
        sweep_jobs, n_jobs=jobs, use_cache=use_cache,
        cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        progress=progress)
    return dict(zip(workload_names, raise_on_errors(results)))
