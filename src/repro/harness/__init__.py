"""Experiment harness: per-figure drivers, speed, case study, ablations."""

from repro.harness.figures import (
    KernelMetrics, fig4_table, fig5_table, fig6_table, fig7_table,
    run_suite_metrics, run_workload_metrics, shape_checks, suite_average,
)
from repro.harness.speed import SpeedReport, measure_speed
from repro.harness.warmup_case import CaseStudyResult, run_case_study

__all__ = [
    "KernelMetrics", "fig4_table", "fig5_table", "fig6_table",
    "fig7_table", "run_suite_metrics", "run_workload_metrics",
    "shape_checks", "suite_average", "SpeedReport", "measure_speed",
    "CaseStudyResult", "run_case_study",
]
