"""Experiment drivers for the paper's figures.

One functional run per workload yields everything Figures 4-7 need; the
tables are different projections of :class:`KernelMetrics`:

- Fig. 4 — dynamic guest instruction distribution across IM/BBM/SBM;
- Fig. 5 — host instructions per guest instruction in SBM;
- Fig. 6 — TOL overhead vs application instructions;
- Fig. 7 — TOL overhead breakdown over seven categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned
from repro.workloads import PHYSICS, SPECFP, SPECINT, suite_workloads
from repro.tol.overhead import CATEGORIES

#: Paper-reported values the reproduction is compared against
#: (suite averages; Fig. 4 SBM%, Fig. 5 cost, Fig. 6 overhead%).
PAPER_SBM_SHARE = {SPECINT: 0.88, SPECFP: 0.96, PHYSICS: 0.75}
PAPER_EMULATION_COST = {SPECINT: 4.0, SPECFP: 2.6, PHYSICS: 3.1}
PAPER_TOL_OVERHEAD = {SPECINT: 0.16, SPECFP: 0.13, PHYSICS: 0.41}


@dataclass
class KernelMetrics:
    name: str
    suite: str
    guest_icount: int
    mode_fraction: Dict[str, float]
    emulation_cost_sbm: float
    tol_overhead_fraction: float
    overhead_breakdown: Dict[str, float]
    app_host_insns: int
    tol_host_insns: int
    static_code_bytes: int
    extras: Dict[str, object] = field(default_factory=dict)
    #: ``TelemetrySnapshot.as_dict()`` of the run ({} with telemetry
    #: off).  ``overhead_breakdown`` above is derived from its
    #: ``tol.overhead.*`` counters whenever a snapshot is available.
    telemetry: Dict[str, object] = field(default_factory=dict)


def run_workload_metrics(workload, scale: float = 1.0,
                         config: Optional[TolConfig] = None,
                         validate: bool = True) -> KernelMetrics:
    program = workload.program(scale=scale)
    result, controller = run_codesigned(program, config=config,
                                        validate=validate)
    if result.exit_code != 0:
        raise RuntimeError(
            f"{workload.name} exited with {result.exit_code}")
    tol = controller.codesigned.tol
    dist = tol.mode_distribution()
    total = sum(dist.values()) or 1
    # Fig. 7 delegates to the metrics registry when telemetry is on:
    # the snapshot's tol.overhead.* counters are the same accounting
    # (held to equality with OverheadAccount.breakdown by the tests).
    if result.telemetry is not None:
        from repro.telemetry import overhead_breakdown_from_snapshot
        breakdown = overhead_breakdown_from_snapshot(result.telemetry)
        telemetry_dict = result.telemetry.as_dict()
    else:
        breakdown = tol.overhead.breakdown()
        telemetry_dict = {}
    return KernelMetrics(
        name=workload.name,
        suite=workload.suite,
        guest_icount=result.guest_icount,
        mode_fraction={k: v / total for k, v in dist.items()},
        emulation_cost_sbm=tol.emulation_cost_sbm(),
        tol_overhead_fraction=tol.overhead_fraction(),
        overhead_breakdown=breakdown,
        app_host_insns=tol.app_host_insns,
        tol_host_insns=tol.tol_overhead_insns,
        static_code_bytes=program.static_code_bytes,
        extras={
            "assert_failures": tol.stats.assert_failures,
            "spec_failures": tol.stats.spec_failures,
            "loops_unrolled": tol.translator.loops_unrolled,
            "chains_made": tol.stats.chains_made,
            "incidents": result.incidents,
            "recoveries": result.recoveries,
            "watchdog_fires": tol.stats.watchdog_fires,
        },
        telemetry=telemetry_dict,
    )


def run_suite_metrics(scale: float = 1.0,
                      config: Optional[TolConfig] = None,
                      suites=(SPECINT, SPECFP, PHYSICS),
                      validate: bool = True,
                      jobs: Optional[int] = None,
                      use_cache: bool = False,
                      cache_dir=None,
                      progress=None) -> List[KernelMetrics]:
    """Metrics for every workload of ``suites``.

    With the defaults this is the seed's sequential in-process loop.
    Passing ``jobs`` and/or enabling the cache routes the runs through
    :func:`repro.harness.parallel.sweep` (identical metrics, wall-clock
    scales with cores, unchanged runs replay from ``cache_dir``).
    """
    if jobs is None and not use_cache and progress is None:
        metrics = []
        for suite in suites:
            for workload in suite_workloads(suite):
                metrics.append(run_workload_metrics(
                    workload, scale=scale, config=config,
                    validate=validate))
        return metrics
    from repro.harness.parallel import (
        DEFAULT_CACHE_DIR, raise_on_errors, suite_sweep_jobs, sweep,
    )
    results = sweep(
        suite_sweep_jobs(scale=scale, config=config, suites=suites,
                         validate=validate),
        n_jobs=jobs, use_cache=use_cache,
        cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        progress=progress)
    return raise_on_errors(results)


def suite_average(metrics: List[KernelMetrics], suite: str, fn) -> float:
    values = [fn(m) for m in metrics if m.suite == suite]
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Table formatters (one per figure).
# ---------------------------------------------------------------------------


def _row(columns, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))


def fig4_table(metrics: List[KernelMetrics]) -> str:
    """Dynamic guest instruction distribution in IM/BBM/SBM (Fig. 4)."""
    widths = (18, 14, 8, 8, 8)
    lines = [_row(("benchmark", "suite", "IM%", "BBM%", "SBM%"), widths)]
    for m in metrics:
        lines.append(_row((
            m.name, m.suite,
            f"{m.mode_fraction.get('IM', 0):.1%}",
            f"{m.mode_fraction.get('BBM', 0):.1%}",
            f"{m.mode_fraction.get('SBM', 0):.1%}"), widths))
    for suite in (SPECINT, SPECFP, PHYSICS):
        sbm = suite_average(metrics, suite,
                            lambda m: m.mode_fraction.get("SBM", 0))
        if any(m.suite == suite for m in metrics):
            lines.append(_row((
                f"AVG {suite}", "",
                "", "", f"{sbm:.1%} (paper {PAPER_SBM_SHARE[suite]:.0%})"),
                widths))
    return "\n".join(lines)


def fig5_table(metrics: List[KernelMetrics]) -> str:
    """Host instructions per guest instruction in SBM (Fig. 5)."""
    widths = (18, 14, 12)
    lines = [_row(("benchmark", "suite", "host/guest"), widths)]
    for m in metrics:
        lines.append(_row((
            m.name, m.suite, f"{m.emulation_cost_sbm:.2f}"), widths))
    for suite in (SPECINT, SPECFP, PHYSICS):
        if any(m.suite == suite for m in metrics):
            avg = suite_average(metrics, suite,
                                lambda m: m.emulation_cost_sbm)
            lines.append(_row((
                f"AVG {suite}", "",
                f"{avg:.2f} (paper {PAPER_EMULATION_COST[suite]:.1f})"),
                widths))
    return "\n".join(lines)


def fig6_table(metrics: List[KernelMetrics]) -> str:
    """TOL overhead vs application instructions (Fig. 6)."""
    widths = (18, 14, 12, 14)
    lines = [_row(("benchmark", "suite", "TOL%", "app insns"), widths)]
    for m in metrics:
        lines.append(_row((
            m.name, m.suite, f"{m.tol_overhead_fraction:.1%}",
            m.app_host_insns), widths))
    for suite in (SPECINT, SPECFP, PHYSICS):
        if any(m.suite == suite for m in metrics):
            avg = suite_average(metrics, suite,
                                lambda m: m.tol_overhead_fraction)
            lines.append(_row((
                f"AVG {suite}", "",
                f"{avg:.1%} (paper {PAPER_TOL_OVERHEAD[suite]:.0%})", ""),
                widths))
    return "\n".join(lines)


def fig7_table(metrics: List[KernelMetrics]) -> str:
    """Dynamic TOL overhead distribution by category (Fig. 7)."""
    widths = (18,) + (9,) * len(CATEGORIES)
    header = ("benchmark",) + tuple(
        c.replace("_translator", "_xl") for c in CATEGORIES)
    lines = [_row(header, widths)]
    for m in metrics:
        lines.append(_row(
            (m.name,) + tuple(
                f"{m.overhead_breakdown.get(c, 0):.1%}"
                for c in CATEGORIES),
            widths))
    for suite in (SPECINT, SPECFP, PHYSICS):
        rows = [m for m in metrics if m.suite == suite]
        if rows:
            avg = {
                c: sum(m.overhead_breakdown.get(c, 0) for m in rows)
                / len(rows)
                for c in CATEGORIES}
            lines.append(_row(
                (f"AVG {suite}",) + tuple(
                    f"{avg[c]:.1%}" for c in CATEGORIES),
                widths))
    return "\n".join(lines)


def shape_checks(metrics: List[KernelMetrics]) -> Dict[str, bool]:
    """The qualitative 'shape' assertions the reproduction must satisfy
    (who wins, orderings, crossovers — per the reproduction contract)."""
    def avg(suite, fn):
        return suite_average(metrics, suite, fn)

    sbm = {s: avg(s, lambda m: m.mode_fraction.get("SBM", 0))
           for s in (SPECINT, SPECFP, PHYSICS)}
    cost = {s: avg(s, lambda m: m.emulation_cost_sbm)
            for s in (SPECINT, SPECFP, PHYSICS)}
    ovh = {s: avg(s, lambda m: m.tol_overhead_fraction)
           for s in (SPECINT, SPECFP, PHYSICS)}
    low_ratio = [m for m in metrics
                 if m.name in ("continuous", "periodic", "ragdoll")]
    checks = {
        # Fig 4: SPECFP most optimized, Physicsbench least.
        "sbm_order_fp>int>phys": sbm[SPECFP] > sbm[SPECINT] > sbm[PHYSICS],
        "sbm_majority_everywhere": all(v > 0.5 for v in sbm.values()),
        # continuous/periodic/ragdoll stand out with large BBM shares.
        "low_ratio_phys_bbm_heavy": all(
            m.mode_fraction.get("BBM", 0) > 0.25 for m in low_ratio)
        if low_ratio else True,
        # Fig 5: SPECINT pays the most per instruction, SPECFP least.
        "cost_order_int>phys>fp": cost[SPECINT] > cost[PHYSICS]
        > cost[SPECFP],
        # Fig 6: Physicsbench overhead is not amortized.
        "overhead_phys_dominates": ovh[PHYSICS] > 2 * ovh[SPECINT]
        and ovh[PHYSICS] > 2 * ovh[SPECFP],
    }
    return checks
