"""DARCO speed measurements (paper §VI-A).

The paper reports guest-ISA emulation at 3.4 MIPS (370 KIPS with timing)
and host-ISA emulation at 20 MIPS (2 MIPS with timing), on one cluster
core.  We measure our Python implementation the same four ways; absolute
numbers are naturally lower (Python vs C++), but the *ratios* — functional
vs timing, guest vs host — are the comparable quantities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.system.controller import run_codesigned
from repro.timing.run import run_with_timing
from repro.tol.config import TolConfig
from repro.workloads import get_workload

#: Paper-reported speeds (instructions per second).
PAPER_GUEST_EMULATION_IPS = 3.4e6
PAPER_GUEST_TIMING_IPS = 370e3
PAPER_HOST_EMULATION_IPS = 20e6
PAPER_HOST_TIMING_IPS = 2e6


@dataclass
class SpeedReport:
    guest_emulation_ips: float
    guest_timing_ips: float
    host_emulation_ips: float
    host_timing_ips: float

    def table(self) -> str:
        rows = [
            ("guest functional", self.guest_emulation_ips,
             PAPER_GUEST_EMULATION_IPS),
            ("guest with timing", self.guest_timing_ips,
             PAPER_GUEST_TIMING_IPS),
            ("host functional", self.host_emulation_ips,
             PAPER_HOST_EMULATION_IPS),
            ("host with timing", self.host_timing_ips,
             PAPER_HOST_TIMING_IPS),
        ]
        lines = [f"{'stream':<20}{'this repo':>14}{'paper (C++)':>14}"]
        for name, mine, paper in rows:
            lines.append(f"{name:<20}{mine / 1e3:>11.1f}k/s"
                         f"{paper / 1e3:>11.0f}k/s")
        ratio_mine = self.guest_emulation_ips / max(1.0,
                                                    self.guest_timing_ips)
        ratio_paper = PAPER_GUEST_EMULATION_IPS / PAPER_GUEST_TIMING_IPS
        lines.append(
            f"functional/timing slowdown: {ratio_mine:.1f}x "
            f"(paper {ratio_paper:.1f}x)")
        return "\n".join(lines)


def measure_speed(workload_name: str = "429.mcf",
                  scale: float = 0.5,
                  config: Optional[TolConfig] = None) -> SpeedReport:
    """Measure all four speeds on one representative workload."""
    workload = get_workload(workload_name)
    program = workload.program(scale=scale)

    t0 = time.perf_counter()
    result, controller = run_codesigned(program, config=config,
                                        validate=False)
    functional_dt = time.perf_counter() - t0
    guest_insns = result.guest_icount
    host_insns = controller.codesigned.tol.host.host_insns_total

    program2 = workload.program(scale=scale)
    t0 = time.perf_counter()
    result2, controller2, core = run_with_timing(
        program2, tol_config=config, include_tol_overhead=True,
        validate=False)
    timing_dt = time.perf_counter() - t0
    timed_host = core.finalize().instructions

    return SpeedReport(
        guest_emulation_ips=guest_insns / functional_dt,
        guest_timing_ips=result2.guest_icount / timing_dt,
        host_emulation_ips=host_insns / functional_dt,
        host_timing_ips=timed_host / timing_dt,
    )


def measure_speed_suite(workload_names=("429.mcf", "433.milc", "ragdoll"),
                        scale: float = 0.4,
                        config: Optional[TolConfig] = None,
                        jobs: Optional[int] = None,
                        progress=None) -> dict:
    """:func:`measure_speed` for several workloads via the sweep runner.

    Wall-clock measurements are never cached (a replayed timing would be
    meaningless), but they do fan out: each workload's measurement runs
    in its own worker process, so a multi-workload speed survey costs one
    workload's wall-clock on enough cores.  Returns ``{name: report}``.
    """
    from repro.harness.parallel import SweepJob, raise_on_errors, sweep
    sweep_jobs = [
        SweepJob(task="speed",
                 params={"workload": name, "scale": scale,
                         "config": config},
                 label=f"speed:{name}")
        for name in workload_names]
    results = sweep(sweep_jobs, n_jobs=jobs, use_cache=False,
                    progress=progress)
    return dict(zip(workload_names, raise_on_errors(results)))
