"""The differential oracle: one candidate, every execution tier.

Each candidate runs through the reference interpretive path first (a
program that crashes or never exits there is *invalid*, not
interesting), then through a matrix of co-designed legs — interpretive,
fastpath, direct tier, in strict and recover modes, each validating
against the authoritative x86 component, each with the invariant
sanitizer hot — and optionally an annotated-timing leg whose cycle
report must be bit-identical to the per-instruction timing path.

Anything that raises, records a divergence-class incident, disagrees
with the other legs on retirement counts, or breaks the timing
identity is a finding.  A mutant that exhausts the event budget or only
trips the livelock watchdog is classified ``runaway`` and skipped — it
must never hang a worker or abort the campaign.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.guest.emulator import GuestEmulator
from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.tol.config import TolConfig

#: Leg matrix: (name, TolConfig overrides).  The interpretive strict leg
#: is the in-stack reference; the others cross every tier with both
#: recovery modes.
DEFAULT_LEGS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("interp_strict", {"interp_fastpath": False, "host_fastpath": False,
                       "direct_enable": False, "recovery_mode": "strict"}),
    ("fastpath_strict", {"direct_enable": False,
                         "recovery_mode": "strict"}),
    ("direct_strict", {"recovery_mode": "strict"}),
    ("fastpath_recover", {"direct_enable": False,
                          "recovery_mode": "recover"}),
    ("direct_recover", {"recovery_mode": "recover"}),
)

#: Incident kinds that constitute a divergence finding.  Deliberately
#: excludes ``rollback_storm`` (speculation failing hard enough to
#: demote is the adaptive pipeline working, not a bug) and
#: ``livelock`` (watchdog-tamed mutants classify as runaway).
_DIVERGENCE_KINDS = frozenset(
    {"state_divergence", "memory_divergence", "sync_lost"})


@dataclass
class FuzzOutcome:
    """Result of one candidate through the whole oracle (picklable)."""

    classification: str            #: ok | invalid | runaway | finding
    edges: List[str] = field(default_factory=list)
    finding_kind: Optional[str] = None   #: divergence|sanitizer|timing
    finding_leg: Optional[str] = None
    signature: Optional[str] = None
    error: Optional[str] = None
    bundle_path: Optional[str] = None
    runaway_leg: Optional[str] = None


def _reference_clean(program: GuestProgram, os_stdin: bytes,
                     os_seed: int, step_cap: int) -> Optional[int]:
    """Reference icount when the candidate runs clean, else None."""
    emu = GuestEmulator(program,
                        os=GuestOS(stdin=os_stdin, rand_seed=os_seed))
    try:
        emu.run(max_steps=step_cap)
    except Exception:
        return None
    return emu.icount if emu.os.exited else None


def _signature_for(kind: str, leg: str, tol, error: Optional[str]) -> str:
    """Dedup signature: the incident log's canonical digest when the
    run recorded incidents, else a hash of the failure head (two
    different mutants hitting the same corrupting step dedup to one
    finding either way)."""
    if tol is not None and len(tol.incidents):
        return tol.incidents.signature()
    head = (error or "").splitlines()[0][:160] if error else ""
    blob = f"{kind}|{leg}|{head}".encode()
    return hashlib.sha256(blob).hexdigest()


def _write_finding_bundle(repro_dir: Optional[str], controller,
                          reason: str, error: Optional[str]
                          ) -> Optional[str]:
    if repro_dir is None or controller is None:
        return None
    from repro.snapshot.bundle import write_bundle
    try:
        bundle_path = write_bundle(repro_dir, controller, reason,
                                   error=error)
        return str(bundle_path)
    except Exception:
        return None  # triage must never kill the worker


def evaluate_candidate(program: GuestProgram,
                       base_overrides: Optional[Dict[str, object]] = None,
                       fault: Optional[Dict] = None,
                       os_stdin: bytes = b"", os_seed: int = 0x5EED,
                       max_events: int = 100_000,
                       step_cap: int = 400_000,
                       legs=DEFAULT_LEGS,
                       timing: bool = False,
                       sanitize: bool = True,
                       repro_dir: Optional[str] = None) -> FuzzOutcome:
    """Run one candidate through the full oracle matrix."""
    from repro.system.controller import Controller
    from repro.tol.sanitize import KIND_SANITIZER, SanitizerError

    ref_icount = _reference_clean(program, os_stdin, os_seed, step_cap)
    if ref_icount is None:
        return FuzzOutcome(classification="invalid")

    edges: set = set()
    retirements: Dict[str, int] = {}
    controllers: Dict[str, object] = {}

    base = TolConfig().with_overrides(base_overrides or {})
    for leg_name, leg_overrides in legs:
        cfg = base.with_overrides(dict(leg_overrides))
        if sanitize:
            cfg = cfg.with_overrides({"sanitize": True})
        controller = Controller(program, config=cfg,
                                os=GuestOS(stdin=os_stdin,
                                           rand_seed=os_seed))
        tol = controller.codesigned.tol
        if fault is not None:
            from repro.resilience.faults import FaultInjector, FaultSpec
            FaultInjector(FaultSpec(
                site=fault["site"], ordinal=fault["ordinal"],
                salt=fault["salt"])).attach(tol)
        error: Optional[str] = None
        finding_kind: Optional[str] = None
        try:
            result = controller.run(max_events=max_events)
            retirements[leg_name] = result.guest_icount
        except SanitizerError as exc:
            error = f"SanitizerError: {exc}"
            finding_kind = "sanitizer"
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            if "event budget" in str(exc):
                return FuzzOutcome(classification="runaway",
                                   edges=sorted(edges),
                                   runaway_leg=leg_name, error=error)
            finding_kind = "divergence"

        _collect_edges(edges, tol)
        controllers[leg_name] = controller

        if finding_kind is None:
            kinds = set(tol.incidents.kinds())
            if KIND_SANITIZER in kinds:
                finding_kind = "sanitizer"
            elif kinds & _DIVERGENCE_KINDS:
                finding_kind = "divergence"
            elif "livelock" in kinds:
                # Watchdog-tripped: a spinning mutant the ladder already
                # tamed.  Skip, never abort.
                return FuzzOutcome(classification="runaway",
                                   edges=sorted(edges),
                                   runaway_leg=leg_name)
        if finding_kind is not None:
            reason = f"fuzz_{finding_kind}"
            sig = _signature_for(finding_kind, leg_name, tol, error)
            path = _write_finding_bundle(repro_dir, controller, reason,
                                         error)
            return FuzzOutcome(
                classification="finding", edges=sorted(edges),
                finding_kind=finding_kind, finding_leg=leg_name,
                signature=sig, error=error, bundle_path=path)

    # Cross-leg retirement identity: every clean leg must agree.
    counts = sorted(set(retirements.values()))
    if len(counts) > 1:
        worst = max(retirements, key=lambda k: abs(
            retirements[k] - retirements[next(iter(retirements))]))
        controller = controllers[worst]
        tol = controller.codesigned.tol
        tol.incidents.record(
            "state_divergence", retirements[worst],
            detail={"retirements": dict(sorted(retirements.items())),
                    "check": "cross_leg_retirement"},
            suspects=(), actions=("cross-leg retirement mismatch",))
        err = f"cross-leg retirement mismatch: {retirements}"
        sig = _signature_for("divergence", worst, tol, err)
        path = _write_finding_bundle(repro_dir, controller,
                                     "fuzz_divergence", err)
        return FuzzOutcome(
            classification="finding", edges=sorted(edges),
            finding_kind="divergence", finding_leg=worst,
            signature=sig, error=err, bundle_path=path)

    if timing:
        outcome = _timing_leg(program, base, os_stdin, os_seed,
                              sanitize, edges, repro_dir)
        if outcome is not None:
            return outcome

    return FuzzOutcome(classification="ok", edges=sorted(edges))


def _collect_edges(edges: set, tol) -> None:
    from repro.fuzz.coverage import edges_from_counters
    try:
        snap = tol.telemetry.snapshot()
        edges.update(edges_from_counters(snap.counters))
    except Exception:
        pass


def _timing_leg(program, base_cfg, os_stdin, os_seed, sanitize,
                edges: set, repro_dir) -> Optional[FuzzOutcome]:
    """Annotated vs per-instruction timing: reports must be identical."""
    from repro.timing.run import run_with_timing

    cfg = base_cfg.with_overrides(
        {"recovery_mode": "strict", "sanitize": bool(sanitize)})
    reports = {}
    for annotate in (False, True):
        leg = f"timing_annotate_{'on' if annotate else 'off'}"
        try:
            _, controller, core = run_with_timing(
                program, tol_config=cfg,
                os=GuestOS(stdin=os_stdin, rand_seed=os_seed),
                annotate=annotate)
        except Exception as exc:
            err = f"{type(exc).__name__}: {exc}"
            sig = _signature_for("timing", leg, None, err)
            return FuzzOutcome(
                classification="finding", edges=sorted(edges),
                finding_kind="timing", finding_leg=leg,
                signature=sig, error=err)
        _collect_edges(edges, controller.codesigned.tol)
        reports[annotate] = (core.report(), controller)
    if reports[True][0] != reports[False][0]:
        controller = reports[True][1]
        tol = controller.codesigned.tol
        tol.incidents.record(
            "timing_mismatch", tol.guest_icount,
            detail={"check": "annotated_vs_per_instruction"},
            suspects=(), actions=("cycle report mismatch",))
        err = "annotated timing cycle report differs"
        sig = _signature_for("timing", "timing_annotate_on", tol, err)
        path = _write_finding_bundle(repro_dir, controller,
                                     "fuzz_timing", err)
        return FuzzOutcome(
            classification="finding", edges=sorted(edges),
            finding_kind="timing", finding_leg="timing_annotate_on",
            signature=sig, error=err, bundle_path=path)
    return None
