"""The fuzzer's coverage map, derived from the telemetry registry.

An "edge" is a counter name from the whitelisted namespaces bucketed by
the magnitude of its value (``name#bit_length``): coverage grows when a
run exercises a *new path class* (a new exit arm, a new superblock
shape, a new quarantine transition) or pushes a known one into a new
order of magnitude (a loop that used to spin 10 times spinning 10k
times is new behaviour worth keeping).  Buckets keep the map small and
stable: exact counts differ across trivial mutations, magnitudes only
across genuinely different behaviour.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping

#: Counter namespaces that constitute TOL-path coverage.  ``cov.*`` are
#: the dedicated cheap path counters (exit arms, shapes, direct-tier
#: outcomes, quarantine edges, sanitizer checks); the others capture
#: mode mix, incident kinds and annotated-timing fallback reasons.
COVERAGE_NAMESPACES = (
    "cov.",
    "mode.retired.",
    "resilience.incidents.",
    "resilience.quarantine.",
    "timing.annotated.fallback.",
)


def edges_from_counters(counters: Mapping[str, int]) -> FrozenSet[str]:
    """The coverage edges exercised by one run's counter snapshot."""
    edges = set()
    for name, value in counters.items():
        if not value:
            continue
        for ns in COVERAGE_NAMESPACES:
            if name.startswith(ns):
                edges.add(f"{name}#{int(value).bit_length()}")
                break
    return frozenset(edges)


class CoverageMap:
    """Accumulated edge set across a campaign."""

    def __init__(self):
        self._edges: Dict[str, int] = {}  # edge -> hit count (runs)

    def __len__(self) -> int:
        return len(self._edges)

    def add(self, edges: Iterable[str]) -> int:
        """Merge one run's edges; returns how many were new."""
        new = 0
        for edge in edges:
            if edge not in self._edges:
                new += 1
                self._edges[edge] = 1
            else:
                self._edges[edge] += 1
        return new

    def edges(self) -> FrozenSet[str]:
        return frozenset(self._edges)

    def as_dict(self) -> Dict[str, int]:
        """Deterministic serialization (sorted edge -> hit count)."""
        return dict(sorted(self._edges.items()))

    def digest(self) -> str:
        """Stable fingerprint of the edge *set* (not hit counts), for
        replay-determinism assertions across ``--jobs`` values."""
        import hashlib
        blob = "\n".join(sorted(self._edges)).encode()
        return hashlib.sha256(blob).hexdigest()
