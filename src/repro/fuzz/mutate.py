"""Length-preserving GISA program mutations.

The guest encoding is variable-length with absolute branch targets, so
mutations never change an instruction's size: immediates are rewritten
in place (same 5-byte ``Imm`` slot), opcodes swap only within the same
operand signature, branches retarget only to decoded instruction
boundaries, and whole instructions are NOP-masked rather than deleted
(the minimizer's trick).  Every mutation re-encodes the instruction and
asserts the byte length is unchanged — a mutation that cannot keep the
length is skipped, never mis-applied.

All randomness flows from a :class:`random.Random` seeded by the
campaign, so a ``(seed, entry, round, k)`` tuple always produces the
same mutant: the campaign is replay-deterministic at any ``--jobs``.
"""

from __future__ import annotations

import json
import random
from typing import List, Optional

from repro.guest.encoding import encode_instr
from repro.guest.isa import (
    CONDITION_CODES, INSN_SPECS, GuestInstr, Imm, Reg,
)
from repro.guest.program import GuestProgram
from repro.snapshot.minimize import (
    _NOP_BYTE, _is_direct_branch, decode_program_instrs,
)
from repro.snapshot.serialize import program_from_dict, program_to_dict

#: Values that historically shake out boundary bugs.
_INTERESTING = (0, 1, 2, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000,
                0xFFFF, 0x10000, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF)

#: Mnemonics grouped by operand signature + flags behaviour, so an
#: opcode swap keeps the operand bytes valid *and* stays decodable.
_SWAP_GROUPS = (
    ("ADD", "SUB", "AND", "OR", "XOR", "CMP"),
    ("TEST",),
    ("INC", "DEC", "NEG", "NOT"),
    ("SHL", "SHR", "SAR"),
    ("MOV",),
)
_SWAP_OF = {}
for _group in _SWAP_GROUPS:
    for _m in _group:
        _SWAP_OF[_m] = tuple(x for x in _group if x != _m)


def load_corpus_program(path: str) -> GuestProgram:
    """Load a corpus entry (a ``program_to_dict`` JSON file)."""
    with open(path, "r", encoding="utf-8") as fh:
        return program_from_dict(json.load(fh))


def save_corpus_program(path: str, program: GuestProgram) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(program_to_dict(program), fh, sort_keys=True)


class MutationEngine:
    """Deterministic mutation of one guest program."""

    def __init__(self, program: GuestProgram):
        self.program = program
        self.instrs: List[GuestInstr] = decode_program_instrs(program)
        #: Valid absolute branch targets: instruction boundaries.
        self.boundaries = tuple(i.addr for i in self.instrs)

    # -- single mutations (each returns new code bytes or None) --------

    def _patch(self, code: bytearray, instr: GuestInstr,
               replacement: GuestInstr) -> bool:
        """Re-encode ``replacement`` over ``instr``'s bytes in place;
        False (no change) when the length would differ."""
        try:
            raw = encode_instr(replacement)
        except Exception:
            return False
        if len(raw) != instr.length:
            return False
        off = instr.addr - self.program.base
        code[off:off + instr.length] = raw
        return True

    def _mut_imm(self, rng: random.Random, code: bytearray) -> bool:
        """Rewrite a random immediate: interesting constant, arithmetic
        nudge, or single bit flip (all keep the 5-byte Imm slot)."""
        cands = [(i, j) for i, ins in enumerate(self.instrs)
                 for j, op in enumerate(ins.operands)
                 if isinstance(op, Imm) and not _is_direct_branch(ins)]
        if not cands:
            return False
        i, j = rng.choice(cands)
        ins = self.instrs[i]
        old = ins.operands[j].u32
        kind = rng.randrange(3)
        if kind == 0:
            new = rng.choice(_INTERESTING)
        elif kind == 1:
            new = (old + rng.choice((-2, -1, 1, 2))) & 0xFFFFFFFF
        else:
            new = old ^ (1 << rng.randrange(32))
        ops = list(ins.operands)
        ops[j] = Imm(new)
        return self._patch(code, ins,
                           GuestInstr(ins.mnemonic, tuple(ops)))

    def _mut_opcode(self, rng: random.Random, code: bytearray) -> bool:
        """Swap a mnemonic within its operand-signature group."""
        cands = [i for i, ins in enumerate(self.instrs)
                 if _SWAP_OF.get(ins.mnemonic)]
        if not cands:
            return False
        ins = self.instrs[rng.choice(cands)]
        new = rng.choice(_SWAP_OF[ins.mnemonic])
        return self._patch(code, ins, GuestInstr(new, ins.operands))

    def _mut_cc(self, rng: random.Random, code: bytearray) -> bool:
        """Flip a conditional branch's condition code (same target)."""
        cands = [i for i, ins in enumerate(self.instrs)
                 if ins.mnemonic.startswith("J")
                 and ins.mnemonic[1:] in CONDITION_CODES]
        if not cands:
            return False
        ins = self.instrs[rng.choice(cands)]
        cc = rng.choice([c for c in CONDITION_CODES
                         if c != ins.mnemonic[1:]])
        if f"J{cc}" not in INSN_SPECS:
            return False
        return self._patch(code, ins, GuestInstr(f"J{cc}", ins.operands))

    def _mut_branch_target(self, rng: random.Random,
                           code: bytearray) -> bool:
        """Retarget a direct branch to another instruction boundary —
        the mutation that actually reshapes superblocks, chains and
        quarantine paths."""
        cands = [i for i, ins in enumerate(self.instrs)
                 if _is_direct_branch(ins)]
        if not cands:
            return False
        ins = self.instrs[rng.choice(cands)]
        target = rng.choice(self.boundaries)
        ops = (Imm(target),) + tuple(ins.operands[1:])
        return self._patch(code, ins, GuestInstr(ins.mnemonic, ops))

    def _mut_nop(self, rng: random.Random, code: bytearray) -> bool:
        """NOP-mask one instruction (skip branches and the entry, which
        tend to produce trivially-invalid programs)."""
        cands = [i for i, ins in enumerate(self.instrs)
                 if not ins.is_branch and ins.mnemonic != "SYSCALL"
                 and ins.addr != self.program.entry]
        if not cands:
            return False
        ins = self.instrs[rng.choice(cands)]
        off = ins.addr - self.program.base
        code[off:off + ins.length] = _NOP_BYTE * ins.length
        return True

    _MUTATIONS = ("_mut_imm", "_mut_opcode", "_mut_cc",
                  "_mut_branch_target", "_mut_nop")
    #: branch retargets and immediates dominate: they reshape control
    #: flow and data values, the two axes the coverage map watches.
    _WEIGHTS = (4, 2, 2, 3, 1)

    def mutate(self, rng: random.Random,
               n_mutations: Optional[int] = None) -> GuestProgram:
        """A mutant: 1-4 stacked length-preserving mutations."""
        code = bytearray(self.program.code)
        n = n_mutations if n_mutations is not None else rng.randrange(1, 5)
        applied = 0
        for _ in range(n * 4):  # retry budget for skipped mutations
            if applied >= n:
                break
            name = rng.choices(self._MUTATIONS,
                               weights=self._WEIGHTS, k=1)[0]
            if getattr(self, name)(rng, code):
                applied += 1
        return GuestProgram(
            code=bytes(code), base=self.program.base,
            entry=self.program.entry, data=dict(self.program.data),
            stack_top=self.program.stack_top)
