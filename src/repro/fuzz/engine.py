"""Campaign engine: corpus, energy scheduling, fan-out, triage.

A campaign is rounds of deterministic mutant generation (in the parent,
so the mutant stream is identical at any ``--jobs``) fanned out through
the sweep runner for evaluation.  Coverage feedback drives both
seed-corpus growth (a mutant that reached new edges becomes a corpus
entry) and mutation energy (entries that recently produced new coverage
get a larger share of the next round's budget).

Every finding is auto-triaged in the parent: deduped by incident
signature, ddmin-minimized with a kind-matched oracle
(:func:`repro.snapshot.minimize.oracle_for_reason`), and confirmed by
replaying its emitted repro bundle (or re-running the timing oracle for
timing findings).
"""

from __future__ import annotations

import base64
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fuzz.coverage import CoverageMap
from repro.fuzz.mutate import MutationEngine, load_corpus_program
from repro.fuzz.oracle import DEFAULT_LEGS, FuzzOutcome
from repro.guest.program import GuestProgram
from repro.harness.parallel import SweepJob, sweep
from repro.snapshot.serialize import program_from_dict, program_to_dict
from repro.tol.config import TolConfig
from repro.workloads.generator import SyntheticSpec, generate

#: Corpus entries beyond which discoveries stop being added (energy
#: scheduling still favours the productive ones).
_CORPUS_CAP = 64
#: Mutation-energy bounds (mutants per entry per round).
_ENERGY_MIN, _ENERGY_MAX = 1, 8


@dataclass
class FuzzConfig:
    """Campaign parameters (all deterministic inputs)."""

    seed: int = 1
    budget: int = 200              #: candidate executions
    jobs: int = 1
    batch: int = 16                #: candidates per sweep round
    sanitize: bool = True
    timing_every: int = 0          #: 0 = no timing leg; else every Nth
    max_events: int = 100_000
    step_cap: int = 400_000
    repro_dir: Optional[str] = None
    corpus_dir: Optional[str] = None   #: extra seed programs (JSON)
    overrides: Dict[str, object] = field(default_factory=dict)
    #: plant a deterministic fault on one execution:
    #: ``{"exec": N, "site": ..., "ordinal": ..., "salt": ...}``.
    plant: Optional[Dict] = None
    minimize: bool = True
    confirm: bool = True
    minimize_max_events: int = 100_000
    #: ``False`` disables coverage feedback (no corpus growth, no
    #: energy scheduling): the random-mutation baseline the guided
    #: campaign is benchmarked against.
    guided: bool = True
    #: Truncate the seed corpus to its first N entries (None = all).
    #: ``guided=False, corpus_limit=1`` is the classic blackbox
    #: baseline: blind mutation of a single seed.
    corpus_limit: Optional[int] = None


@dataclass
class Finding:
    """One deduplicated, triaged finding."""

    kind: str                      #: divergence | sanitizer | timing
    signature: str
    leg: str
    exec_index: int
    error: Optional[str] = None
    bundle_path: Optional[str] = None
    duplicates: int = 0
    minimized_instructions: Optional[int] = None
    original_instructions: Optional[int] = None
    minimized_program: Optional[Dict] = None
    confirmed: Optional[bool] = None


@dataclass
class CampaignResult:
    executions: int
    elapsed_s: float
    coverage: Dict[str, int]
    coverage_digest: str
    findings: List[Finding]
    classified: Dict[str, int]
    corpus_size: int

    @property
    def execs_per_sec(self) -> float:
        return self.executions / self.elapsed_s if self.elapsed_s else 0.0

    def signatures(self) -> List[str]:
        return sorted(f.signature for f in self.findings)

    def as_dict(self) -> Dict:
        d = asdict(self)
        d["execs_per_sec"] = self.execs_per_sec
        d["signatures"] = self.signatures()
        return d


@dataclass
class _Entry:
    entry_id: str
    program: GuestProgram
    engine: MutationEngine
    energy: int = _ENERGY_MIN


def seed_corpus(seed: int, corpus_dir: Optional[str] = None
                ) -> List[_Entry]:
    """The initial corpus: small synthetic kernels spanning the
    workload axes (branchy loops, memory traffic, FP, cold stanzas),
    plus any programs checked into ``corpus_dir``."""
    specs = [
        SyntheticSpec(seed=seed * 7 + 1, hot_loops=1, trip_count=300,
                      bb_size=6, mem_ops=1, cold_stanzas=2),
        SyntheticSpec(seed=seed * 7 + 2, hot_loops=2, trip_count=150,
                      bb_size=4, branch_bias=0.6, mem_ops=2,
                      cold_stanzas=3),
        SyntheticSpec(seed=seed * 7 + 3, hot_loops=1, trip_count=200,
                      bb_size=8, fp_ops=1, cold_stanzas=2),
        SyntheticSpec(seed=seed * 7 + 4, hot_loops=3, trip_count=80,
                      bb_size=5, branch_bias=0.85, cold_stanzas=4),
    ]
    entries = [
        _Entry(entry_id=f"seed{i}", program=generate(spec),
               engine=None)  # type: ignore[arg-type]
        for i, spec in enumerate(specs)
    ]
    if corpus_dir and os.path.isdir(corpus_dir):
        for name in sorted(os.listdir(corpus_dir)):
            if not name.endswith(".json"):
                continue
            try:
                program = load_corpus_program(
                    os.path.join(corpus_dir, name))
            except Exception:
                continue
            entries.append(_Entry(entry_id=f"corpus:{name}",
                                  program=program, engine=None))
    for entry in entries:
        entry.engine = MutationEngine(entry.program)
    return entries


def _allocate(entries: List[_Entry], batch: int) -> List[int]:
    """Mutants per entry this round, proportional to energy
    (deterministic largest-remainder; every entry gets >= 0 and the
    total is <= batch, >= min(batch, len(entries)))."""
    total_energy = sum(e.energy for e in entries)
    raw = [batch * e.energy / total_energy for e in entries]
    counts = [int(r) for r in raw]
    remainder = batch - sum(counts)
    order = sorted(range(len(entries)),
                   key=lambda i: (-(raw[i] - counts[i]), i))
    for i in order[:remainder]:
        counts[i] += 1
    return counts


def run_campaign(config: FuzzConfig,
                 progress=None) -> CampaignResult:
    """Run a full fuzz campaign; returns the aggregated result.

    ``progress(executed, budget, coverage_edges, findings)`` is invoked
    after each round when given."""
    import random

    started = time.monotonic()
    entries = seed_corpus(config.seed, config.corpus_dir)
    if config.corpus_limit:
        entries = entries[:config.corpus_limit]
    coverage = CoverageMap()
    findings: Dict[str, Finding] = {}
    classified = {"ok": 0, "invalid": 0, "runaway": 0, "finding": 0}
    executed = 0
    rnd = 0

    if config.repro_dir:
        os.makedirs(config.repro_dir, exist_ok=True)

    while executed < config.budget:
        batch = min(config.batch, config.budget - executed)
        counts = _allocate(entries, batch)
        plan: List[Tuple[_Entry, GuestProgram, int]] = []
        for entry, n in zip(list(entries), counts):
            for k in range(n):
                rng = random.Random(
                    f"{config.seed}:{entry.entry_id}:{rnd}:{k}")
                plan.append((entry, entry.engine.mutate(rng),
                             executed + len(plan)))
        if not plan:
            break

        jobs = []
        for entry, mutant, exec_index in plan:
            fault = None
            if (config.plant is not None
                    and exec_index == config.plant.get("exec")):
                fault = {k: v for k, v in config.plant.items()
                         if k != "exec"}
            timing = bool(config.timing_every
                          and exec_index % config.timing_every == 0)
            jobs.append(SweepJob(
                task="fuzz_case",
                params={
                    "program": program_to_dict(mutant),
                    "base_overrides": dict(config.overrides),
                    "fault": fault,
                    "os_stdin_b64":
                        base64.b64encode(b"").decode("ascii"),
                    "os_seed": 0x5EED,
                    "max_events": config.max_events,
                    "step_cap": config.step_cap,
                    "timing": timing,
                    "sanitize": config.sanitize,
                    "repro_dir": config.repro_dir,
                },
                label=f"fuzz:{entry.entry_id}:{exec_index}"))

        results = sweep(jobs, n_jobs=config.jobs, use_cache=False)

        round_new: Dict[str, int] = {}
        for (entry, mutant, exec_index), result in zip(plan, results):
            executed += 1
            if result.error is not None:
                # A worker crash is itself triaged as a finding — the
                # campaign never aborts on one bad mutant.
                outcome = FuzzOutcome(classification="finding",
                                      finding_kind="divergence",
                                      finding_leg="worker",
                                      error=result.error,
                                      signature=f"worker:{result.error[:80]}")
            else:
                outcome = FuzzOutcome(**result.value)
            classified[outcome.classification] = \
                classified.get(outcome.classification, 0) + 1
            new_edges = coverage.add(outcome.edges)
            round_new[entry.entry_id] = \
                round_new.get(entry.entry_id, 0) + new_edges
            if (config.guided and new_edges
                    and len(entries) < _CORPUS_CAP
                    and outcome.classification == "ok"):
                discovered = _Entry(
                    entry_id=f"d{exec_index}", program=mutant,
                    engine=MutationEngine(mutant),
                    energy=min(_ENERGY_MAX, 1 + new_edges))
                entries.append(discovered)
            if outcome.classification == "finding":
                sig = outcome.signature or "unsigned"
                if sig in findings:
                    findings[sig].duplicates += 1
                else:
                    findings[sig] = Finding(
                        kind=outcome.finding_kind or "divergence",
                        signature=sig,
                        leg=outcome.finding_leg or "?",
                        exec_index=exec_index,
                        error=outcome.error,
                        bundle_path=outcome.bundle_path)
                    _triage(findings[sig], mutant, config)

        # Energy update: recent discoverers breed more next round.
        if config.guided:
            for entry in entries:
                new = round_new.get(entry.entry_id, 0)
                if new:
                    entry.energy = min(_ENERGY_MAX, entry.energy + new)
                elif entry.energy > _ENERGY_MIN:
                    entry.energy -= 1
        rnd += 1
        if progress is not None:
            progress(executed, config.budget, len(coverage),
                     len(findings))

    return CampaignResult(
        executions=executed,
        elapsed_s=time.monotonic() - started,
        coverage=coverage.as_dict(),
        coverage_digest=coverage.digest(),
        findings=sorted(findings.values(),
                        key=lambda f: (f.exec_index, f.signature)),
        classified=classified,
        corpus_size=len(entries),
    )


def _leg_config(config: FuzzConfig, leg: str) -> TolConfig:
    overrides = dict(config.overrides)
    for name, leg_overrides in DEFAULT_LEGS:
        if name == leg:
            overrides.update(leg_overrides)
            break
    cfg = TolConfig().with_overrides(overrides)
    if config.sanitize:
        cfg = cfg.with_overrides({"sanitize": True})
    return cfg


def _triage(finding: Finding, mutant: GuestProgram,
            config: FuzzConfig) -> None:
    """Minimize + confirm one fresh finding (best-effort: triage
    failures leave the raw finding intact, they never raise)."""
    from repro.snapshot.minimize import minimize_program, oracle_for_reason

    fault = None
    if config.plant is not None and finding.exec_index == \
            config.plant.get("exec"):
        fault = {k: v for k, v in config.plant.items() if k != "exec"}

    if config.minimize and finding.leg != "worker":
        try:
            oracle = oracle_for_reason(
                f"fuzz_{finding.kind}",
                _leg_config(config, finding.leg), fault=fault,
                max_events=config.minimize_max_events)
            result = minimize_program(mutant, oracle=oracle)
            finding.minimized_instructions = result.instructions
            finding.original_instructions = result.original_instructions
            finding.minimized_program = program_to_dict(result.program)
        except Exception:
            pass

    if config.confirm:
        finding.confirmed = _confirm(finding, mutant, config, fault)


def _confirm(finding: Finding, mutant: GuestProgram,
             config: FuzzConfig, fault) -> Optional[bool]:
    try:
        if finding.bundle_path:
            from repro.snapshot.bundle import load_bundle, replay_bundle
            bundle = load_bundle(finding.bundle_path)
            outcome, _ = replay_bundle(
                bundle, max_events=config.max_events)
            return bool(outcome.diverged)
        # No bundle (e.g. timing finding without repro_dir): re-run the
        # kind-matched oracle on the offending program directly.
        from repro.snapshot.minimize import oracle_for_reason
        oracle = oracle_for_reason(
            f"fuzz_{finding.kind}", _leg_config(config, finding.leg),
            fault=fault, max_events=config.max_events)
        program = (program_from_dict(finding.minimized_program)
                   if finding.minimized_program else mutant)
        return bool(oracle.diverges(program))
    except Exception:
        return None
