"""Coverage-guided differential fuzzer for the co-designed stack.

``darco fuzz`` mutates GISA guest programs to maximize TOL-path
coverage (``cov.*`` telemetry: unit-exit arms, superblock shapes,
quarantine ladder edges, direct-tier outcomes, annotated-timing
fallback reasons) and runs every candidate through a differential
oracle — the reference interpretive path vs the fastpath / direct /
annotated-timing tiers, in strict and recover modes — flagging any
divergence in architectural state, retirement counts or cycle reports.
Findings are auto-triaged: deduped by incident signature, emitted as
self-contained repro bundles, ddmin-minimized with a kind-matched
oracle, and replayed for confirmation.
"""

from repro.fuzz.coverage import COVERAGE_NAMESPACES, CoverageMap
from repro.fuzz.mutate import MutationEngine, load_corpus_program
from repro.fuzz.oracle import DEFAULT_LEGS, FuzzOutcome, evaluate_candidate
from repro.fuzz.engine import (
    CampaignResult, Finding, FuzzConfig, run_campaign,
)

__all__ = [
    "COVERAGE_NAMESPACES", "CoverageMap", "MutationEngine",
    "load_corpus_program", "DEFAULT_LEGS", "FuzzOutcome",
    "evaluate_candidate", "CampaignResult", "Finding", "FuzzConfig",
    "run_campaign",
]
