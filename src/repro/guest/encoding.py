"""Variable-length byte encoding for guest instructions.

The encoding is deliberately CISC-flavoured: one opcode byte, followed by a
tagged operand stream.  Instruction lengths range from 1 byte (``NOP``,
``RET``) to 13 bytes (memory operand plus a 32-bit immediate), so static code
size and fetch behaviour resemble x86.

Layout::

    opcode:1  (operand)*
    operand := tag:1 payload
    tag 0 -> GPR      payload reg:1
    tag 1 -> FPR      payload reg:1
    tag 2 -> VR       payload reg:1
    tag 3 -> imm32    payload value:4 (little endian)
    tag 4 -> mem      payload mode:1 [base:1] [index:1] disp:4
                      mode bits: 0x01 has_base, 0x02 has_index,
                                 0x0C scale (log2, bits 2-3)
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.guest.isa import (
    FPR_NAMES, GPR_NAMES, INSN_SPECS, MNEMONICS, OPCODE_OF, VR_NAMES,
    FReg, GuestInstr, Imm, Mem, Reg, VReg,
)

_TAG_REG = 0
_TAG_FREG = 1
_TAG_VREG = 2
_TAG_IMM = 3
_TAG_MEM = 4

_SCALE_TO_LOG = {1: 0, 2: 1, 4: 2, 8: 3}
_LOG_TO_SCALE = {v: k for k, v in _SCALE_TO_LOG.items()}


class EncodingError(Exception):
    """Raised on malformed instruction bytes or unencodable operands."""


def encode_instr(instr: GuestInstr) -> bytes:
    """Encode one guest instruction to bytes (``addr``/``length`` ignored)."""
    if instr.mnemonic not in INSN_SPECS:
        raise EncodingError(f"unknown mnemonic {instr.mnemonic!r}")
    spec = INSN_SPECS[instr.mnemonic]
    if len(instr.operands) != len(spec.operands):
        raise EncodingError(
            f"{instr.mnemonic} expects {len(spec.operands)} operands, "
            f"got {len(instr.operands)}")
    out = bytearray([OPCODE_OF[instr.mnemonic]])
    for operand, kind in zip(instr.operands, spec.operands):
        _check_kind(instr.mnemonic, operand, kind)
        out += _encode_operand(operand)
    return bytes(out)


def _check_kind(mnemonic, operand, kind):
    allowed = {
        "r": (Reg,),
        "f": (FReg,),
        "v": (VReg,),
        "i": (Imm,),
        "m": (Mem,),
        "rm": (Reg, Mem),
        "ri": (Reg, Imm),
        "rmi": (Reg, Mem, Imm),
    }[kind]
    if not isinstance(operand, allowed):
        raise EncodingError(
            f"{mnemonic}: operand {operand!r} not allowed for kind {kind!r}")


def _encode_operand(operand) -> bytes:
    if isinstance(operand, Reg):
        return bytes([_TAG_REG, operand.index])
    if isinstance(operand, FReg):
        return bytes([_TAG_FREG, operand.index])
    if isinstance(operand, VReg):
        return bytes([_TAG_VREG, operand.index])
    if isinstance(operand, Imm):
        return bytes([_TAG_IMM]) + struct.pack("<I", operand.u32)
    if isinstance(operand, Mem):
        mode = 0
        body = bytearray()
        if operand.base is not None:
            mode |= 0x01
            body.append(Reg(operand.base).index)
        if operand.index is not None:
            mode |= 0x02
            body.append(Reg(operand.index).index)
        mode |= _SCALE_TO_LOG[operand.scale] << 2
        body += struct.pack("<I", operand.disp & 0xFFFFFFFF)
        return bytes([_TAG_MEM, mode]) + bytes(body)
    raise EncodingError(f"unencodable operand {operand!r}")


def decode_instr(read_byte, addr: int) -> GuestInstr:
    """Decode one instruction at ``addr``.

    ``read_byte(address)`` must return the memory byte at ``address`` (it may
    raise :class:`repro.guest.memory.PageFault`, which propagates so the
    co-designed component can fetch the missing code page).
    """
    pos = addr

    def take(n: int) -> bytes:
        nonlocal pos
        data = bytes(read_byte(pos + i) for i in range(n))
        pos += n
        return data

    opcode = take(1)[0]
    if opcode >= len(MNEMONICS):
        raise EncodingError(f"bad opcode {opcode:#x} at {addr:#x}")
    mnemonic = MNEMONICS[opcode]
    spec = INSN_SPECS[mnemonic]
    operands = []
    for _ in spec.operands:
        operands.append(_decode_operand(take))
    return GuestInstr(mnemonic, tuple(operands), addr=addr, length=pos - addr)


def _decode_operand(take):
    tag = take(1)[0]
    if tag == _TAG_REG:
        return Reg(GPR_NAMES[take(1)[0] & 7])
    if tag == _TAG_FREG:
        return FReg(FPR_NAMES[take(1)[0] & 7])
    if tag == _TAG_VREG:
        return VReg(VR_NAMES[take(1)[0] & 7])
    if tag == _TAG_IMM:
        return Imm(struct.unpack("<I", take(4))[0])
    if tag == _TAG_MEM:
        mode = take(1)[0]
        base = GPR_NAMES[take(1)[0] & 7] if mode & 0x01 else None
        index = GPR_NAMES[take(1)[0] & 7] if mode & 0x02 else None
        scale = _LOG_TO_SCALE[(mode >> 2) & 0x3]
        disp = struct.unpack("<I", take(4))[0]
        return Mem(base=base, index=index, scale=scale, disp=disp)
    raise EncodingError(f"bad operand tag {tag:#x}")


def encode_program(instrs) -> Tuple[bytes, dict]:
    """Encode a sequence of instructions; return (code bytes, offset map)."""
    out = bytearray()
    offsets = {}
    for i, instr in enumerate(instrs):
        offsets[i] = len(out)
        out += encode_instr(instr)
    return bytes(out), offsets
