"""Guest ISA (GISA) definition.

GISA is a synthetic CISC instruction set standing in for x86 (see DESIGN.md,
substitution table).  It reproduces the ISA *shape* that drives the paper's
evaluation: few architectural registers, condition flags written as a side
effect of ALU operations, memory operands with base+index*scale+disp
addressing, variable-length encoding, complex instructions (division, string
operations) and transcendental instructions (sin/cos) that the host must
emulate in software.

The module defines registers, operand kinds, the instruction table with
semantic metadata, and the :class:`GuestInstr` container produced by the
encoder/decoder in :mod:`repro.guest.encoding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

MASK32 = 0xFFFFFFFF

#: Guest general purpose registers, x86 style.
GPR_NAMES = ("EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI")
#: Guest scalar floating point registers (flat file, unlike the x87 stack).
FPR_NAMES = tuple(f"F{i}" for i in range(8))
#: Guest 4-lane 32-bit integer vector registers.
VR_NAMES = tuple(f"V{i}" for i in range(8))
#: Guest condition flags (PF/AF omitted; see DESIGN.md).
FLAG_NAMES = ("ZF", "SF", "CF", "OF")

GPR_INDEX = {name: i for i, name in enumerate(GPR_NAMES)}
FPR_INDEX = {name: i for i, name in enumerate(FPR_NAMES)}
VR_INDEX = {name: i for i, name in enumerate(VR_NAMES)}
FLAG_INDEX = {name: i for i, name in enumerate(FLAG_NAMES)}


@dataclass(frozen=True)
class Reg:
    """A guest general-purpose register operand."""

    name: str

    def __post_init__(self):
        if self.name not in GPR_INDEX:
            raise ValueError(f"unknown guest GPR {self.name!r}")

    @property
    def index(self) -> int:
        return GPR_INDEX[self.name]

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class FReg:
    """A guest floating-point register operand."""

    name: str

    def __post_init__(self):
        if self.name not in FPR_INDEX:
            raise ValueError(f"unknown guest FPR {self.name!r}")

    @property
    def index(self) -> int:
        return FPR_INDEX[self.name]

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class VReg:
    """A guest vector register operand."""

    name: str

    def __post_init__(self):
        if self.name not in VR_INDEX:
            raise ValueError(f"unknown guest VR {self.name!r}")

    @property
    def index(self) -> int:
        return VR_INDEX[self.name]

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand (32-bit two's-complement encodable)."""

    value: int

    def __post_init__(self):
        if not (-(1 << 31) <= self.value <= MASK32):
            raise ValueError(f"immediate {self.value} not encodable in 32 bits")

    @property
    def u32(self) -> int:
        return self.value & MASK32

    def __repr__(self):
        return f"${self.value:#x}"


@dataclass(frozen=True)
class Mem:
    """A memory operand: effective address = base + index*scale + disp."""

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self):
        if self.base is not None and self.base not in GPR_INDEX:
            raise ValueError(f"unknown base register {self.base!r}")
        if self.index is not None and self.index not in GPR_INDEX:
            raise ValueError(f"unknown index register {self.index!r}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"scale must be 1/2/4/8, got {self.scale}")
        if not (-(1 << 31) <= self.disp <= MASK32):
            raise ValueError(f"displacement {self.disp} not encodable")

    def __repr__(self):
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return "[" + "+".join(parts) + "]"


Operand = object  # union of Reg/FReg/VReg/Imm/Mem


class InsnClass(Enum):
    """Broad semantic classes used by the TOL and the timing cost tables."""

    ALU = "alu"
    MOVE = "move"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    FP_TRIG = "fp_trig"
    FP_MEM = "fp_mem"
    VEC = "vec"
    VEC_MEM = "vec_mem"
    STRING = "string"
    SYSCALL = "syscall"
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one guest mnemonic.

    ``operands`` is a tuple of operand-kind strings used by the assembler and
    the encoder for validation: ``r`` GPR, ``f`` FPR, ``v`` VR, ``i``
    immediate, ``m`` memory, ``rm`` register-or-memory, ``rmi``
    register-memory-or-immediate, ``ri`` register-or-immediate.
    """

    mnemonic: str
    operands: Tuple[str, ...]
    klass: InsnClass
    writes_flags: bool = False
    reads_flags: bool = False
    #: True for instructions the TOL never includes in translations (they are
    #: handled by the interpreter "safety net": syscalls and string ops).
    interpreter_only: bool = False
    #: True for control transfer instructions (end a basic block).
    is_branch: bool = False


def _spec(mnemonic, operands, klass, **kw):
    return InsnSpec(mnemonic, tuple(operands), klass, **kw)


#: Condition codes for Jcc: name -> predicate over flags, documented in
#: :mod:`repro.guest.emulator`.
CONDITION_CODES = (
    "E", "NE", "L", "LE", "G", "GE", "B", "BE", "A", "AE", "S", "NS",
)

INSN_SPECS = {}


def _add(spec: InsnSpec):
    if spec.mnemonic in INSN_SPECS:
        raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
    INSN_SPECS[spec.mnemonic] = spec


# Data movement.
_add(_spec("MOV", ("rm", "rmi"), InsnClass.MOVE))
_add(_spec("LEA", ("r", "m"), InsnClass.ALU))
_add(_spec("PUSH", ("ri",), InsnClass.STORE))
_add(_spec("POP", ("r",), InsnClass.LOAD))
_add(_spec("XCHG", ("r", "r"), InsnClass.MOVE))

# Integer ALU, flag-writing (x86 style side effect).
for op in ("ADD", "SUB", "AND", "OR", "XOR"):
    _add(_spec(op, ("rm", "rmi"), InsnClass.ALU, writes_flags=True))
_add(_spec("CMP", ("rm", "rmi"), InsnClass.ALU, writes_flags=True))
_add(_spec("TEST", ("r", "ri"), InsnClass.ALU, writes_flags=True))
_add(_spec("INC", ("rm",), InsnClass.ALU, writes_flags=True))
_add(_spec("DEC", ("rm",), InsnClass.ALU, writes_flags=True))
_add(_spec("NEG", ("r",), InsnClass.ALU, writes_flags=True))
_add(_spec("NOT", ("r",), InsnClass.ALU))
for op in ("SHL", "SHR", "SAR"):
    _add(_spec(op, ("r", "i"), InsnClass.ALU, writes_flags=True))
_add(_spec("IMUL", ("r", "rmi"), InsnClass.MUL, writes_flags=True))
_add(_spec("IDIV", ("rm",), InsnClass.DIV, writes_flags=True))

# Control flow.
_add(_spec("JMP", ("i",), InsnClass.BRANCH, is_branch=True))
_add(_spec("JMPI", ("rm",), InsnClass.BRANCH, is_branch=True))
for cc in CONDITION_CODES:
    _add(_spec(
        f"J{cc}", ("i",), InsnClass.BRANCH, reads_flags=True, is_branch=True))
_add(_spec("CALL", ("i",), InsnClass.CALL, is_branch=True))
_add(_spec("CALLI", ("rm",), InsnClass.CALL, is_branch=True))
_add(_spec("RET", (), InsnClass.RET, is_branch=True))

# Scalar floating point.
_add(_spec("FLD", ("f", "m"), InsnClass.FP_MEM))
_add(_spec("FST", ("m", "f"), InsnClass.FP_MEM))
_add(_spec("FMOV", ("f", "f"), InsnClass.FP))
for op in ("FADD", "FSUB", "FMUL", "FDIV"):
    _add(_spec(op, ("f", "f"), InsnClass.FP))
_add(_spec("FCMP", ("f", "f"), InsnClass.FP, writes_flags=True))
for op in ("FSIN", "FCOS"):
    _add(_spec(op, ("f",), InsnClass.FP_TRIG))
_add(_spec("FSQRT", ("f",), InsnClass.FP))
_add(_spec("FABS", ("f",), InsnClass.FP))
_add(_spec("FNEG", ("f",), InsnClass.FP))
_add(_spec("FLDI", ("f", "i"), InsnClass.FP))  # load small integer constant
_add(_spec("CVTIF", ("f", "r"), InsnClass.FP))
_add(_spec("CVTFI", ("r", "f"), InsnClass.FP))

# Vector (4 x int32 lanes).
_add(_spec("VLD", ("v", "m"), InsnClass.VEC_MEM))
_add(_spec("VST", ("m", "v"), InsnClass.VEC_MEM))
for op in ("VADD", "VSUB", "VMUL"):
    _add(_spec(op, ("v", "v"), InsnClass.VEC))
_add(_spec("VSPLAT", ("v", "r"), InsnClass.VEC))
_add(_spec("VMOV", ("v", "v"), InsnClass.VEC))

# Complex string operations (interpreter-only: the software layer handles
# the corner cases the hardware omits, as the paper describes).
_add(_spec("REP_MOVSD", (), InsnClass.STRING, interpreter_only=True))
_add(_spec("REP_STOSD", (), InsnClass.STRING, interpreter_only=True))

# System.
_add(_spec(
    "SYSCALL", (), InsnClass.SYSCALL, interpreter_only=True, is_branch=True))
_add(_spec("NOP", (), InsnClass.NOP))
_add(_spec("HLT", (), InsnClass.HALT, interpreter_only=True, is_branch=True))


#: Stable mnemonic ordering used by the byte encoder.
MNEMONICS = tuple(sorted(INSN_SPECS))
OPCODE_OF = {m: i for i, m in enumerate(MNEMONICS)}


@dataclass(frozen=True)
class GuestInstr:
    """One decoded guest instruction.

    ``addr`` and ``length`` locate the instruction in guest memory so the TOL
    can compute fall-through addresses and code-cache keys.
    """

    mnemonic: str
    operands: Tuple[Operand, ...]
    addr: int = 0
    length: int = 0

    @property
    def spec(self) -> InsnSpec:
        return INSN_SPECS[self.mnemonic]

    @property
    def next_addr(self) -> int:
        return (self.addr + self.length) & MASK32

    @property
    def is_branch(self) -> bool:
        return self.spec.is_branch

    def __repr__(self):
        ops = ", ".join(repr(o) for o in self.operands)
        return f"{self.mnemonic} {ops}".strip()


def u32(value: int) -> int:
    """Wrap an integer to an unsigned 32-bit guest value."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret a 32-bit guest value as signed."""
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value
