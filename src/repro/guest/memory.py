"""Paged guest memory.

Both DARCO components keep a full guest memory image.  The x86 component's
memory is authoritative and allocates pages on demand; the co-designed
component's memory is *lazy*: touching a page that has not yet been received
from the x86 component raises :class:`PageFault`, which the TOL turns into a
data-request synchronization event (paper §V-A).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDR_MASK = 0xFFFFFFFF


class PageFault(Exception):
    """Access to a page not present in this component's memory image."""

    def __init__(self, addr: int):
        super().__init__(f"page fault at {addr:#010x}")
        self.addr = addr & ADDR_MASK

    @property
    def page(self) -> int:
        return self.addr >> PAGE_SHIFT


class PagedMemory:
    """A sparse 32-bit byte-addressable memory image.

    ``demand_zero=True`` (x86 component): missing pages materialize as zeros.
    ``demand_zero=False`` (co-designed component): missing pages raise
    :class:`PageFault`.
    """

    def __init__(self, demand_zero: bool = True):
        self.demand_zero = demand_zero
        self._pages: Dict[int, bytearray] = {}
        #: Pages written since the last :meth:`clear_dirty` (used by the
        #: controller to propagate syscall side effects between components).
        self.dirty: set = set()

    # -- page management ----------------------------------------------------

    def page_present(self, page: int) -> bool:
        return page in self._pages

    def present_pages(self) -> Iterable[int]:
        return self._pages.keys()

    def install_page(self, page: int, data: bytes) -> None:
        """Install a 4KB page image (used to serve data requests)."""
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page image must be {PAGE_SIZE} bytes")
        self._pages[page] = bytearray(data)

    def export_page(self, page: int) -> bytes:
        """Return a copy of a page (zeros if absent and demand-zero)."""
        data = self._page_for(page << PAGE_SHIFT)
        return bytes(data)

    def _page_for(self, addr: int) -> bytearray:
        page = (addr & ADDR_MASK) >> PAGE_SHIFT
        data = self._pages.get(page)
        if data is None:
            if not self.demand_zero:
                raise PageFault(addr)
            data = bytearray(PAGE_SIZE)
            self._pages[page] = data
        return data

    # -- scalar accessors ---------------------------------------------------

    def read_u8(self, addr: int) -> int:
        addr &= ADDR_MASK
        return self._page_for(addr)[addr & PAGE_MASK]

    def clear_dirty(self) -> None:
        self.dirty.clear()

    def write_u8(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        self._page_for(addr)[addr & PAGE_MASK] = value & 0xFF
        self.dirty.add(addr >> PAGE_SHIFT)

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        for i in range(size):
            out.append(self.read_u8(addr + i))
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.write_u8(addr + i, byte)

    def read_u32(self, addr: int) -> int:
        addr &= ADDR_MASK
        offset = addr & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._page_for(addr)
            return struct.unpack_from("<I", page, offset)[0]
        return struct.unpack("<I", self.read_bytes(addr, 4))[0]

    def write_u32(self, addr: int, value: int) -> None:
        addr &= ADDR_MASK
        offset = addr & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._page_for(addr)
            struct.pack_into("<I", page, offset, value & 0xFFFFFFFF)
            self.dirty.add(addr >> PAGE_SHIFT)
        else:
            self.write_bytes(addr, struct.pack("<I", value & 0xFFFFFFFF))

    def read_f64(self, addr: int) -> float:
        return struct.unpack("<d", self.read_bytes(addr, 8))[0]

    def write_f64(self, addr: int, value: float) -> None:
        self.write_bytes(addr, struct.pack("<d", float(value)))

    def read_vec(self, addr: int):
        """Read a 4-lane int32 vector (16 bytes)."""
        return list(struct.unpack("<4I", self.read_bytes(addr, 16)))

    def write_vec(self, addr: int, lanes) -> None:
        self.write_bytes(
            addr, struct.pack("<4I", *[lane & 0xFFFFFFFF for lane in lanes]))

    # -- whole image helpers (validation / debug) ---------------------------

    def equal_on_pages(self, other: "PagedMemory", pages) -> bool:
        return all(self.export_page(p) == other.export_page(p) for p in pages)

    def first_difference(self, other: "PagedMemory", pages):
        """Return (page, offset) of the first differing byte, or None."""
        for page in sorted(pages):
            mine, theirs = self.export_page(page), other.export_page(page)
            if mine != theirs:
                for offset, (a, b) in enumerate(zip(mine, theirs)):
                    if a != b:
                        return page, offset
        return None
