"""Authoritative guest functional emulator.

This is the execution core of DARCO's *x86 component*: it executes the
unmodified guest binary directly (decode-and-execute, no translation) and
therefore holds the authoritative architectural and memory state the
co-designed component is validated against (paper §V).

It is implemented independently from the TOL's decode-to-IR path on purpose:
a translation bug cannot hide by being mirrored here.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.guest import semantics as sem
from repro.guest.encoding import decode_instr
from repro.guest.isa import GuestInstr, Imm, Mem, Reg, s32, u32
from repro.guest.memory import PagedMemory
from repro.guest.program import GuestProgram
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS


class EmulationError(Exception):
    """Raised on conditions the guest ISA leaves undefined (bad opcode...)."""


class GuestEmulator:
    """Decode-and-execute guest emulator with authoritative state."""

    def __init__(self, program: GuestProgram,
                 os: Optional[GuestOS] = None,
                 memory: Optional[PagedMemory] = None):
        self.program = program
        self.os = os if os is not None else GuestOS()
        self.memory = memory if memory is not None else PagedMemory()
        program.load_into(self.memory)
        self.state = GuestState()
        self.state.eip = program.entry
        self.state.set("ESP", program.stack_top)
        self.icount = 0
        self.branch_count = 0
        self.bb_count = 0
        self.class_counts: Counter = Counter()
        self._decode_cache: Dict[int, GuestInstr] = {}

    # -- fetch ---------------------------------------------------------------

    def fetch(self, addr: int) -> GuestInstr:
        instr = self._decode_cache.get(addr)
        if instr is None:
            instr = decode_instr(self.memory.read_u8, addr)
            self._decode_cache[addr] = instr
        return instr

    @property
    def halted(self) -> bool:
        return self.os.exited

    def current_instr(self) -> GuestInstr:
        return self.fetch(self.state.eip)

    # -- run loops -----------------------------------------------------------

    def step(self) -> GuestInstr:
        """Execute exactly one guest instruction (including syscalls)."""
        instr = self.fetch(self.state.eip)
        self._execute(instr)
        self.icount += 1
        self.class_counts[instr.spec.klass] += 1
        if instr.is_branch:
            self.branch_count += 1
            self.bb_count += 1
        return instr

    def run(self, max_steps: Optional[int] = None) -> int:
        """Run until the program exits (or ``max_steps``); returns icount."""
        steps = 0
        while not self.halted and (max_steps is None or steps < max_steps):
            self.step()
            steps += 1
        return self.icount

    def run_to_icount(self, target: int) -> None:
        """Advance until exactly ``target`` instructions have retired.

        This is how the x86 component catches up to the co-designed
        component's execution point during synchronization.
        """
        if target < self.icount:
            raise EmulationError(
                f"cannot run backwards: at {self.icount}, asked {target}")
        while self.icount < target and not self.halted:
            self.step()
        if self.icount != target and not self.halted:
            raise EmulationError("failed to reach synchronization point")

    # -- operand helpers -----------------------------------------------------

    def effective_addr(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.state.gpr[Reg(mem.base).index]
        if mem.index is not None:
            addr += self.state.gpr[Reg(mem.index).index] * mem.scale
        return u32(addr)

    def _read_int(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.state.gpr[operand.index]
        if isinstance(operand, Imm):
            return operand.u32
        if isinstance(operand, Mem):
            return self.memory.read_u32(self.effective_addr(operand))
        raise EmulationError(f"not an integer operand: {operand!r}")

    def _write_int(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.state.gpr[operand.index] = u32(value)
        elif isinstance(operand, Mem):
            self.memory.write_u32(self.effective_addr(operand), u32(value))
        else:
            raise EmulationError(f"not a writable operand: {operand!r}")

    def _set_flags(self, flags: Dict[str, int]) -> None:
        for name, value in flags.items():
            self.state.set(name, value)

    # -- execution -----------------------------------------------------------

    def _execute(self, instr: GuestInstr) -> None:
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise EmulationError(f"unhandled mnemonic {instr.mnemonic}")
        next_eip = handler(self, instr)
        self.state.eip = next_eip if next_eip is not None else instr.next_addr


# ---------------------------------------------------------------------------
# Instruction handlers.  Each returns the next EIP, or None for fall-through.
# Memory effects are ordered before register/flag effects so that a page
# fault leaves the architectural state untouched (restartable instructions).
# ---------------------------------------------------------------------------

_HANDLERS = {}


def _handler(*mnemonics):
    def wrap(fn):
        for m in mnemonics:
            _HANDLERS[m] = fn
        return fn
    return wrap


@_handler("NOP")
def _h_nop(emu, instr):
    return None


@_handler("MOV")
def _h_mov(emu, instr):
    dst, src = instr.operands
    emu._write_int(dst, emu._read_int(src))
    return None


@_handler("LEA")
def _h_lea(emu, instr):
    dst, mem = instr.operands
    emu.state.gpr[dst.index] = emu.effective_addr(mem)
    return None


@_handler("XCHG")
def _h_xchg(emu, instr):
    a, b = instr.operands
    gpr = emu.state.gpr
    gpr[a.index], gpr[b.index] = gpr[b.index], gpr[a.index]
    return None


@_handler("PUSH")
def _h_push(emu, instr):
    value = emu._read_int(instr.operands[0])
    esp = u32(emu.state.get("ESP") - 4)
    emu.memory.write_u32(esp, value)
    emu.state.set("ESP", esp)
    return None


@_handler("POP")
def _h_pop(emu, instr):
    esp = emu.state.get("ESP")
    value = emu.memory.read_u32(esp)
    reg = instr.operands[0]
    if reg.index == 4:
        # POP ESP: the loaded value becomes the stack pointer; the
        # post-increment is not architecturally visible (x86 semantics).
        emu.state.set("ESP", value)
        return None
    emu.state.gpr[reg.index] = value
    emu.state.set("ESP", u32(esp + 4))
    return None


@_handler("ADD")
def _h_add(emu, instr):
    dst, src = instr.operands
    res, flags = sem.add32(emu._read_int(dst), emu._read_int(src))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("SUB")
def _h_sub(emu, instr):
    dst, src = instr.operands
    res, flags = sem.sub32(emu._read_int(dst), emu._read_int(src))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("CMP")
def _h_cmp(emu, instr):
    dst, src = instr.operands
    _, flags = sem.sub32(emu._read_int(dst), emu._read_int(src))
    emu._set_flags(flags)
    return None


@_handler("AND", "OR", "XOR")
def _h_logic(emu, instr):
    dst, src = instr.operands
    a, b = emu._read_int(dst), emu._read_int(src)
    if instr.mnemonic == "AND":
        raw = a & b
    elif instr.mnemonic == "OR":
        raw = a | b
    else:
        raw = a ^ b
    res, flags = sem.logic32(raw)
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("TEST")
def _h_test(emu, instr):
    a, b = (emu._read_int(op) for op in instr.operands)
    _, flags = sem.logic32(a & b)
    emu._set_flags(flags)
    return None


@_handler("INC")
def _h_inc(emu, instr):
    dst = instr.operands[0]
    res, flags = sem.inc32(emu._read_int(dst))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("DEC")
def _h_dec(emu, instr):
    dst = instr.operands[0]
    res, flags = sem.dec32(emu._read_int(dst))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("NEG")
def _h_neg(emu, instr):
    dst = instr.operands[0]
    res, flags = sem.neg32(emu._read_int(dst))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("NOT")
def _h_not(emu, instr):
    dst = instr.operands[0]
    emu._write_int(dst, ~emu._read_int(dst))
    return None


@_handler("SHL", "SHR", "SAR")
def _h_shift(emu, instr):
    dst, count_op = instr.operands
    fn = {"SHL": sem.shl32, "SHR": sem.shr32, "SAR": sem.sar32}[instr.mnemonic]
    res, flags = fn(emu._read_int(dst), emu._read_int(count_op))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("IMUL")
def _h_imul(emu, instr):
    dst, src = instr.operands
    res, flags = sem.imul32(emu._read_int(dst), emu._read_int(src))
    emu._write_int(dst, res)
    emu._set_flags(flags)
    return None


@_handler("IDIV")
def _h_idiv(emu, instr):
    divisor = emu._read_int(instr.operands[0])
    quotient, remainder = sem.idiv32(emu.state.get("EAX"), divisor)
    emu.state.set("EAX", quotient)
    emu.state.set("EDX", remainder)
    _, flags = sem.logic32(quotient)
    emu._set_flags(flags)
    return None


@_handler("JMP")
def _h_jmp(emu, instr):
    return emu._read_int(instr.operands[0])


@_handler("JMPI")
def _h_jmpi(emu, instr):
    return emu._read_int(instr.operands[0])


@_handler("CALL", "CALLI")
def _h_call(emu, instr):
    target = emu._read_int(instr.operands[0])
    esp = u32(emu.state.get("ESP") - 4)
    emu.memory.write_u32(esp, instr.next_addr)
    emu.state.set("ESP", esp)
    return target


@_handler("RET")
def _h_ret(emu, instr):
    esp = emu.state.get("ESP")
    target = emu.memory.read_u32(esp)
    emu.state.set("ESP", u32(esp + 4))
    return target


def _h_jcc(emu, instr):
    cc = instr.mnemonic[1:]
    zf, sf, cf, of = (emu.state.get(n) for n in ("ZF", "SF", "CF", "OF"))
    if sem.CONDITION_EVAL[cc](zf, sf, cf, of):
        return emu._read_int(instr.operands[0])
    return None


for _cc in sem.CONDITION_EVAL:
    _HANDLERS[f"J{_cc}"] = _h_jcc


@_handler("FLD")
def _h_fld(emu, instr):
    freg, mem = instr.operands
    emu.state.fpr[freg.index] = emu.memory.read_f64(emu.effective_addr(mem))
    return None


@_handler("FST")
def _h_fst(emu, instr):
    mem, freg = instr.operands
    emu.memory.write_f64(emu.effective_addr(mem), emu.state.fpr[freg.index])
    return None


@_handler("FMOV")
def _h_fmov(emu, instr):
    dst, src = instr.operands
    emu.state.fpr[dst.index] = emu.state.fpr[src.index]
    return None


@_handler("FADD", "FSUB", "FMUL", "FDIV")
def _h_fbin(emu, instr):
    dst, src = instr.operands
    a, b = emu.state.fpr[dst.index], emu.state.fpr[src.index]
    if instr.mnemonic == "FADD":
        res = a + b
    elif instr.mnemonic == "FSUB":
        res = a - b
    elif instr.mnemonic == "FMUL":
        res = a * b
    else:
        res = sem.fdiv64(a, b)
    emu.state.fpr[dst.index] = res
    return None


@_handler("FCMP")
def _h_fcmp(emu, instr):
    a, b = (emu.state.fpr[op.index] for op in instr.operands)
    emu._set_flags(sem.fcmp(a, b))
    return None


@_handler("FSIN")
def _h_fsin(emu, instr):
    freg = instr.operands[0]
    emu.state.fpr[freg.index] = sem.gisa_sin(emu.state.fpr[freg.index])
    return None


@_handler("FCOS")
def _h_fcos(emu, instr):
    freg = instr.operands[0]
    emu.state.fpr[freg.index] = sem.gisa_cos(emu.state.fpr[freg.index])
    return None


@_handler("FSQRT")
def _h_fsqrt(emu, instr):
    freg = instr.operands[0]
    emu.state.fpr[freg.index] = sem.gisa_sqrt(emu.state.fpr[freg.index])
    return None


@_handler("FABS")
def _h_fabs(emu, instr):
    freg = instr.operands[0]
    emu.state.fpr[freg.index] = abs(emu.state.fpr[freg.index])
    return None


@_handler("FNEG")
def _h_fneg(emu, instr):
    freg = instr.operands[0]
    emu.state.fpr[freg.index] = -emu.state.fpr[freg.index]
    return None


@_handler("FLDI")
def _h_fldi(emu, instr):
    freg, imm = instr.operands
    emu.state.fpr[freg.index] = float(s32(imm.u32))
    return None


@_handler("CVTIF")
def _h_cvtif(emu, instr):
    freg, reg = instr.operands
    emu.state.fpr[freg.index] = float(s32(emu.state.gpr[reg.index]))
    return None


@_handler("CVTFI")
def _h_cvtfi(emu, instr):
    reg, freg = instr.operands
    emu.state.gpr[reg.index] = sem.ftrunc32(emu.state.fpr[freg.index])
    return None


@_handler("VLD")
def _h_vld(emu, instr):
    vreg, mem = instr.operands
    emu.state.vr[vreg.index] = emu.memory.read_vec(emu.effective_addr(mem))
    return None


@_handler("VST")
def _h_vst(emu, instr):
    mem, vreg = instr.operands
    emu.memory.write_vec(emu.effective_addr(mem), emu.state.vr[vreg.index])
    return None


@_handler("VADD", "VSUB", "VMUL")
def _h_vbin(emu, instr):
    dst, src = instr.operands
    a, b = emu.state.vr[dst.index], emu.state.vr[src.index]
    if instr.mnemonic == "VADD":
        res = [u32(x + y) for x, y in zip(a, b)]
    elif instr.mnemonic == "VSUB":
        res = [u32(x - y) for x, y in zip(a, b)]
    else:
        res = [u32(s32(x) * s32(y)) for x, y in zip(a, b)]
    emu.state.vr[dst.index] = res
    return None


@_handler("VSPLAT")
def _h_vsplat(emu, instr):
    vreg, reg = instr.operands
    value = emu.state.gpr[reg.index]
    emu.state.vr[vreg.index] = [value] * 4
    return None


@_handler("VMOV")
def _h_vmov(emu, instr):
    dst, src = instr.operands
    emu.state.vr[dst.index] = list(emu.state.vr[src.index])
    return None


@_handler("REP_MOVSD")
def _h_rep_movsd(emu, instr):
    """Copy ECX dwords from [ESI] to [EDI]; restartable per element."""
    state = emu.state
    while state.get("ECX") != 0:
        value = emu.memory.read_u32(state.get("ESI"))
        emu.memory.write_u32(state.get("EDI"), value)
        state.set("ESI", u32(state.get("ESI") + 4))
        state.set("EDI", u32(state.get("EDI") + 4))
        state.set("ECX", u32(state.get("ECX") - 1))
    return None


@_handler("REP_STOSD")
def _h_rep_stosd(emu, instr):
    """Store EAX into ECX dwords at [EDI]; restartable per element."""
    state = emu.state
    while state.get("ECX") != 0:
        emu.memory.write_u32(state.get("EDI"), state.get("EAX"))
        state.set("EDI", u32(state.get("EDI") + 4))
        state.set("ECX", u32(state.get("ECX") - 1))
    return None


@_handler("SYSCALL")
def _h_syscall(emu, instr):
    emu.os.execute(emu.state, emu.memory)
    return None


@_handler("HLT")
def _h_hlt(emu, instr):
    emu.os.exit_code = emu.state.get("EAX")
    return instr.addr  # stay put; halted property takes over
