"""Emulated operating-system interface for guest programs.

In DARCO only the x86 component interacts with the operating system; the
co-designed component models user-level code and synchronizes at system calls
(paper §V).  This module provides that operating system: a small deterministic
syscall layer sufficient for the workload suite.

Calling convention: syscall number in ``EAX``, arguments in ``EBX``, ``ECX``,
``EDX``; result returned in ``EAX``.
"""

from __future__ import annotations

from typing import Optional

from repro.guest.memory import PagedMemory
from repro.guest.program import DEFAULT_HEAP_BASE
from repro.guest.state import GuestState

SYS_EXIT = 1
SYS_WRITE = 2
SYS_READ = 3
SYS_BRK = 4
SYS_TIME = 5
SYS_RAND = 6

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class GuestOS:
    """Deterministic syscall implementation.

    All sources of nondeterminism (time, randomness) are modelled with
    deterministic counters/generators so that the x86 and co-designed
    components always observe identical executions.
    """

    def __init__(self, stdin: bytes = b"", rand_seed: int = 0x5EED):
        self.stdout = bytearray()
        self.stdin = bytes(stdin)
        self.stdin_pos = 0
        self.heap_top = DEFAULT_HEAP_BASE
        self.ticks = 0
        self.rand_state = rand_seed & _LCG_MASK
        self._seed = rand_seed
        self.exit_code: Optional[int] = None
        self.syscall_count = 0

    @property
    def exited(self) -> bool:
        return self.exit_code is not None

    def execute(self, state: GuestState, memory: PagedMemory) -> None:
        """Execute the syscall selected by the architectural state."""
        self.syscall_count += 1
        number = state.gpr[0]  # EAX
        arg1, arg2, arg3 = state.gpr[3], state.gpr[1], state.gpr[2]
        if number == SYS_EXIT:
            self.exit_code = arg1
            result = 0
        elif number == SYS_WRITE:
            data = memory.read_bytes(arg2, arg3)
            self.stdout += data
            result = arg3
        elif number == SYS_READ:
            chunk = self.stdin[self.stdin_pos:self.stdin_pos + arg3]
            memory.write_bytes(arg2, chunk)
            self.stdin_pos += len(chunk)
            result = len(chunk)
        elif number == SYS_BRK:
            if arg1:
                self.heap_top = arg1
            result = self.heap_top
        elif number == SYS_TIME:
            self.ticks += 1
            result = self.ticks
        elif number == SYS_RAND:
            self.rand_state = (
                self.rand_state * _LCG_A + _LCG_C) & _LCG_MASK
            result = (self.rand_state >> 32) & 0xFFFFFFFF
        else:
            result = 0xFFFFFFFF  # ENOSYS-style failure
        state.gpr[0] = result & 0xFFFFFFFF

    def clone_for_replay(self) -> "GuestOS":
        """A fresh OS with identical deterministic inputs (for re-runs)."""
        return GuestOS(stdin=self.stdin, rand_seed=self._seed)
