"""Guest program images.

A :class:`GuestProgram` is what the x86 component "execs": code bytes at a
load address, optional data segments, an entry point and an initial stack.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.guest.memory import PagedMemory

DEFAULT_CODE_BASE = 0x0000_1000
DEFAULT_STACK_TOP = 0x7FFF_F000
DEFAULT_HEAP_BASE = 0x2000_0000


@dataclass
class GuestProgram:
    """An executable guest image."""

    code: bytes
    base: int = DEFAULT_CODE_BASE
    entry: int = DEFAULT_CODE_BASE
    data: Dict[int, bytes] = field(default_factory=dict)
    stack_top: int = DEFAULT_STACK_TOP
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def static_code_bytes(self) -> int:
        return len(self.code)

    def load_into(self, memory: PagedMemory) -> None:
        """Write the image into a memory (the x86 component's loader)."""
        memory.write_bytes(self.base, self.code)
        for addr, blob in self.data.items():
            memory.write_bytes(addr, blob)

    def label_addr(self, name: str) -> int:
        return self.labels[name]


def pack_u32s(values) -> bytes:
    return b"".join(struct.pack("<I", v & 0xFFFFFFFF) for v in values)


def pack_f64s(values) -> bytes:
    return b"".join(struct.pack("<d", float(v)) for v in values)


def unpack_u32s(blob: bytes) -> Tuple[int, ...]:
    return struct.unpack(f"<{len(blob) // 4}I", blob[: len(blob) // 4 * 4])


def unpack_f64s(blob: bytes) -> Tuple[float, ...]:
    return struct.unpack(f"<{len(blob) // 8}d", blob[: len(blob) // 8 * 8])
