"""Text-format assembler for the guest ISA.

The builder API (:mod:`repro.guest.assembler`) is the programmatic way to
construct guest code; this module adds the conventional textual syntax so
programs can live in ``.s`` files::

    ; sum the numbers 1..n
        mov  eax, 0
        mov  ecx, 100
    top:
        add  eax, ecx
        dec  ecx
        jne  top
        mov  edi, eax
        mov  eax, 1          ; SYS_EXIT
        mov  ebx, 0
        syscall

    .data 0x4000 u32 1 2 3 0xff
    .data 0x5000 f64 1.5 -2.25
    .entry top

Operands: registers (``eax``/``f3``/``v2``, case-insensitive), immediates
(decimal, hex, ``'c'`` char, or a label name), and memory operands
``[base + index*scale + disp]`` in any order with a single ``[...]`` pair.
Directives: ``.entry <label>``, ``.base <addr>``, ``.data <addr> u32|f64
<values...>``, ``.ascii <addr> "text"``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.guest.assembler import Assembler, AssemblyError, M
from repro.guest.isa import (
    FPR_NAMES, GPR_NAMES, INSN_SPECS, VR_NAMES, FReg, Imm, Reg, VReg,
)
from repro.guest.program import (
    DEFAULT_CODE_BASE, GuestProgram, pack_f64s, pack_u32s,
)

_GPR = {name.lower(): name for name in GPR_NAMES}
_FPR = {name.lower(): name for name in FPR_NAMES}
_VR = {name.lower(): name for name in VR_NAMES}

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_NAME_RE = re.compile(r"^[A-Za-z_][\w.$]*$")


class AsmSyntaxError(AssemblyError):
    """Raised with a line number on malformed assembly text."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}\n    {line}")
        self.line_no = line_no


def assemble_text(source: str,
                  base: Optional[int] = None) -> GuestProgram:
    """Assemble guest assembly text into a program image."""
    asm = Assembler(base=base if base is not None else DEFAULT_CODE_BASE)
    entry: Optional[str] = None
    pending_base: Optional[int] = None

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith("."):
                entry, pending_base = _directive(
                    asm, line, entry, pending_base)
                continue
            match = _LABEL_RE.match(line)
            if match:
                asm.label(match.group(1))
                continue
            _instruction(asm, line)
        except AsmSyntaxError:
            raise
        except (AssemblyError, ValueError) as exc:
            raise AsmSyntaxError(str(exc), line_no, raw) from exc
    if pending_base is not None:
        asm.base = pending_base
    return asm.program(entry=entry)


# ---------------------------------------------------------------------------


def _directive(asm: Assembler, line: str, entry, pending_base):
    parts = line.split(None, 2)
    name = parts[0]
    if name == ".entry":
        return parts[1], pending_base
    if name == ".base":
        return entry, _int(parts[1])
    if name == ".data":
        addr_s, rest = parts[1], parts[2]
        kind, values = rest.split(None, 1)
        addr = _int(addr_s)
        items = values.split()
        if kind == "u32":
            asm.data(addr, pack_u32s([_int(v) for v in items]))
        elif kind == "f64":
            asm.data(addr, pack_f64s([float(v) for v in items]))
        else:
            raise AssemblyError(f"unknown .data kind {kind!r}")
        return entry, pending_base
    if name == ".ascii":
        addr_s, rest = parts[1], parts[2]
        text = rest.strip()
        if not (text.startswith('"') and text.endswith('"')):
            raise AssemblyError(".ascii needs a double-quoted string")
        asm.data(_int(addr_s), text[1:-1].encode("utf-8"))
        return entry, pending_base
    raise AssemblyError(f"unknown directive {name!r}")


def _instruction(asm: Assembler, line: str) -> None:
    match = re.match(r"^(\S+)\s*(.*)$", line)
    mnemonic = match.group(1).upper()
    if mnemonic not in INSN_SPECS:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
    rest = match.group(2).strip()
    operands = _split_operands(rest) if rest else []
    asm.emit(mnemonic, *[_operand(text) for text in operands])


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside brackets."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    return [p for p in parts if p]


def _operand(text: str):
    lowered = text.lower()
    if lowered in _GPR:
        return Reg(_GPR[lowered])
    if lowered in _FPR:
        return FReg(_FPR[lowered])
    if lowered in _VR:
        return VReg(_VR[lowered])
    if text.startswith("["):
        return _memory(text)
    if len(text) == 3 and text[0] == "'" and text[2] == "'":
        return Imm(ord(text[1]))
    try:
        return Imm(_int(text))
    except ValueError:
        pass
    if _NAME_RE.match(text):
        return text  # label reference, fixed up by the builder
    raise AssemblyError(f"cannot parse operand {text!r}")


def _memory(text: str):
    if not text.endswith("]"):
        raise AssemblyError(f"unterminated memory operand {text!r}")
    inner = text[1:-1].strip()
    base = index = None
    scale = 1
    disp = 0
    # Normalize "a - b" into "+-b" then split on '+'.
    inner = inner.replace("-", "+-")
    for term in (t.strip() for t in inner.split("+")):
        if not term:
            continue
        negative = term.startswith("-")
        if negative:
            term = term[1:].strip()
        if "*" in term:
            reg_s, scale_s = (p.strip() for p in term.split("*", 1))
            if negative:
                raise AssemblyError("negative index is not encodable")
            if reg_s.lower() not in _GPR:
                raise AssemblyError(f"bad index register {reg_s!r}")
            if index is not None:
                raise AssemblyError("two index terms in memory operand")
            index = _GPR[reg_s.lower()]
            scale = _int(scale_s)
        elif term.lower() in _GPR:
            if negative:
                raise AssemblyError("negative base is not encodable")
            if base is None:
                base = _GPR[term.lower()]
            elif index is None:
                index = _GPR[term.lower()]
            else:
                raise AssemblyError("three registers in memory operand")
        else:
            value = _int(term)
            disp += -value if negative else value
    from repro.guest.isa import Mem
    return Mem(base=base, index=index, scale=scale, disp=disp)


def _int(text: str) -> int:
    return int(text, 0)
