"""Shared architectural semantics for guest arithmetic.

The reference emulator (x86 component) and the TOL's translations must agree
bit-for-bit.  For integer arithmetic that is easy (exact wrap helpers).  For
the transcendental instructions (``FSIN``/``FCOS``) the guest ISA *defines*
the result as a specific straight-line polynomial computation — expressed here
as a data "recipe" so the reference emulator evaluates the exact same IEEE
double operations, in the same order, as the host-code expansion emitted by
the TOL code generator.  This mirrors real co-designed processors where trig
is emulated in software (the paper attributes Physicsbench's high emulation
cost to exactly this).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.guest.isa import s32, u32

# --------------------------------------------------------------------------
# Integer ALU + flag semantics (x86-style, see DESIGN.md for documented
# deviations: PF/AF omitted, IDIV flags defined, shift OF defined as 0).
# --------------------------------------------------------------------------


def add32(a: int, b: int) -> Tuple[int, Dict[str, int]]:
    res = u32(a + b)
    flags = {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "CF": int(res < u32(a)),
        "OF": ((~(a ^ b)) & (a ^ res)) >> 31 & 1,
    }
    return res, flags


def sub32(a: int, b: int) -> Tuple[int, Dict[str, int]]:
    res = u32(a - b)
    flags = {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "CF": int(u32(a) < u32(b)),
        "OF": ((a ^ b) & (a ^ res)) >> 31 & 1,
    }
    return res, flags


def logic32(res: int) -> Tuple[int, Dict[str, int]]:
    res = u32(res)
    return res, {"ZF": int(res == 0), "SF": res >> 31, "CF": 0, "OF": 0}


def inc32(a: int) -> Tuple[int, Dict[str, int]]:
    """INC: like ADD 1 but CF is preserved (caller keeps old CF)."""
    res = u32(a + 1)
    return res, {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "OF": int(res == 0x80000000),
    }


def dec32(a: int) -> Tuple[int, Dict[str, int]]:
    """DEC: like SUB 1 but CF is preserved."""
    res = u32(a - 1)
    return res, {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "OF": int(u32(a) == 0x80000000),
    }


def neg32(a: int) -> Tuple[int, Dict[str, int]]:
    res = u32(-a)
    return res, {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "CF": int(u32(a) != 0),
        "OF": int(u32(a) == 0x80000000),
    }


def imul32(a: int, b: int) -> Tuple[int, Dict[str, int]]:
    full = s32(a) * s32(b)
    res = u32(full)
    overflow = int(full != s32(res))
    return res, {
        "ZF": int(res == 0),
        "SF": res >> 31,
        "CF": overflow,
        "OF": overflow,
    }


def idiv32(a: int, b: int) -> Tuple[int, int]:
    """Signed truncated division; by-zero yields (0, a) by ISA definition."""
    sa, sb = s32(a), s32(b)
    if sb == 0:
        return 0, u32(sa)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    remainder = sa - quotient * sb
    return u32(quotient), u32(remainder)


def shl32(a: int, count: int) -> Tuple[int, Dict[str, int]]:
    count &= 31
    if count == 0:
        return u32(a), {}
    res = u32(a << count)
    cf = (u32(a) >> (32 - count)) & 1
    return res, {"ZF": int(res == 0), "SF": res >> 31, "CF": cf, "OF": 0}


def shr32(a: int, count: int) -> Tuple[int, Dict[str, int]]:
    count &= 31
    if count == 0:
        return u32(a), {}
    cf = (u32(a) >> (count - 1)) & 1
    res = u32(a) >> count
    return res, {"ZF": int(res == 0), "SF": res >> 31, "CF": cf, "OF": 0}


def sar32(a: int, count: int) -> Tuple[int, Dict[str, int]]:
    count &= 31
    if count == 0:
        return u32(a), {}
    cf = (s32(a) >> (count - 1)) & 1
    res = u32(s32(a) >> count)
    return res, {"ZF": int(res == 0), "SF": res >> 31, "CF": cf, "OF": 0}


def fcmp(a: float, b: float) -> Dict[str, int]:
    """FCMP flag result; unordered (NaN) sets ZF=CF=1 like x86 FCOMI."""
    if math.isnan(a) or math.isnan(b):
        return {"ZF": 1, "SF": 0, "CF": 1, "OF": 0}
    return {"ZF": int(a == b), "SF": 0, "CF": int(a < b), "OF": 0}


#: Condition-code predicates over (ZF, SF, CF, OF) -> bool.
CONDITION_EVAL = {
    "E": lambda zf, sf, cf, of: zf == 1,
    "NE": lambda zf, sf, cf, of: zf == 0,
    "L": lambda zf, sf, cf, of: sf != of,
    "LE": lambda zf, sf, cf, of: zf == 1 or sf != of,
    "G": lambda zf, sf, cf, of: zf == 0 and sf == of,
    "GE": lambda zf, sf, cf, of: sf == of,
    "B": lambda zf, sf, cf, of: cf == 1,
    "BE": lambda zf, sf, cf, of: cf == 1 or zf == 1,
    "A": lambda zf, sf, cf, of: cf == 0 and zf == 0,
    "AE": lambda zf, sf, cf, of: cf == 0,
    "S": lambda zf, sf, cf, of: sf == 1,
    "NS": lambda zf, sf, cf, of: sf == 0,
}


# --------------------------------------------------------------------------
# Transcendental recipes.
#
# A recipe is a list of straight-line steps over named double slots:
#   ("const", dst, value)      dst = value
#   ("mul",   dst, a, b)       dst = a * b
#   ("add",   dst, a, b)       dst = a + b
#   ("sub",   dst, a, b)       dst = a - b
#   ("floor", dst, a)          dst = floor(a)
# The input slot is "x" and the result slot is "res".  Every consumer
# (reference emulator, IR evaluator, host code generator) derives its
# implementation from the same recipe, guaranteeing bit-identical results.
# --------------------------------------------------------------------------

_TWO_PI = 6.283185307179586
_INV_TWO_PI = 0.15915494309189535
_HALF_PI = 1.5707963267948966

#: Odd Taylor coefficients for sin(y), y in [-pi, pi].
_SIN_COEFFS = (
    -1.0 / 6.0,
    1.0 / 120.0,
    -1.0 / 5040.0,
    1.0 / 362880.0,
    -1.0 / 39916800.0,
    1.0 / 6227020800.0,
    -1.0 / 1307674368000.0,
    1.0 / 355687428096000.0,
    -1.0 / 121645100408832000.0,
)


def _build_sin_recipe(phase_shift: float) -> List[tuple]:
    """Range-reduce x (optionally phase shifted for cos) then evaluate the
    odd polynomial with Horner's scheme."""
    steps: List[tuple] = []
    if phase_shift:
        steps += [
            ("const", "shift", phase_shift),
            ("add", "x1", "x", "shift"),
        ]
        x = "x1"
    else:
        x = "x"
    steps += [
        ("const", "inv2pi", _INV_TWO_PI),
        ("const", "twopi", _TWO_PI),
        ("const", "half", 0.5),
        ("mul", "t", x, "inv2pi"),
        ("add", "t2", "t", "half"),
        ("floor", "k", "t2"),
        ("mul", "kk", "k", "twopi"),
        ("sub", "y", x, "kk"),
        ("mul", "z", "y", "y"),
    ]
    coeffs = list(_SIN_COEFFS)
    steps.append(("const", "acc", coeffs[-1]))
    acc = "acc"
    for i in range(len(coeffs) - 2, -1, -1):
        steps.append(("const", f"c{i}", coeffs[i]))
        steps.append(("mul", f"m{i}", acc, "z"))
        steps.append(("add", f"a{i}", f"m{i}", f"c{i}"))
        acc = f"a{i}"
    steps += [
        ("const", "one", 1.0),
        ("mul", "p", acc, "z"),
        ("add", "q", "p", "one"),
        ("mul", "res", "q", "y"),
    ]
    return steps


SIN_RECIPE: List[tuple] = _build_sin_recipe(0.0)
COS_RECIPE: List[tuple] = _build_sin_recipe(_HALF_PI)

TRIG_RECIPES = {"sin": SIN_RECIPE, "cos": COS_RECIPE}


def eval_recipe(recipe: List[tuple], x: float) -> float:
    """Reference evaluation of a transcendental recipe."""
    slots: Dict[str, float] = {"x": float(x)}
    for step in recipe:
        op = step[0]
        if op == "const":
            slots[step[1]] = step[2]
        elif op == "mul":
            slots[step[1]] = slots[step[2]] * slots[step[3]]
        elif op == "add":
            slots[step[1]] = slots[step[2]] + slots[step[3]]
        elif op == "sub":
            slots[step[1]] = slots[step[2]] - slots[step[3]]
        elif op == "floor":
            slots[step[1]] = math.floor(slots[step[2]])
        else:
            raise ValueError(f"bad recipe op {op!r}")
    return slots["res"]


def gisa_sin(x: float) -> float:
    """The guest ISA's architectural definition of FSIN."""
    return eval_recipe(SIN_RECIPE, x)


def gisa_cos(x: float) -> float:
    """The guest ISA's architectural definition of FCOS."""
    return eval_recipe(COS_RECIPE, x)


def fdiv64(a: float, b: float) -> float:
    """Architectural FP division: IEEE-style inf/nan on divide by zero."""
    if b != 0.0:
        return a / b
    if a == 0.0 or a != a:
        return float("nan")
    return float("inf") if a > 0 else float("-inf")


def ftrunc32(value: float) -> int:
    """Architectural double -> int32 truncation (NaN/inf -> 0, wraps)."""
    if value != value or value in (float("inf"), float("-inf")):
        return 0
    return u32(int(value))


def gisa_sqrt(x: float) -> float:
    """FSQRT is a hardware instruction on the host: IEEE sqrt. Negative
    inputs yield NaN (no trap)."""
    if x < 0:
        return float("nan")
    return math.sqrt(x)
