"""Guest ISA (GISA): definition, assembler, memory, and reference emulator."""

from repro.guest.asmtext import assemble_text
from repro.guest.assembler import Assembler, M
from repro.guest.emulator import GuestEmulator
from repro.guest.isa import FReg, GuestInstr, Imm, Mem, Reg, VReg
from repro.guest.memory import PAGE_SIZE, PagedMemory, PageFault
from repro.guest.program import GuestProgram
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS

__all__ = [
    "assemble_text", "Assembler", "M", "GuestEmulator", "FReg", "GuestInstr", "Imm", "Mem",
    "Reg", "VReg", "PAGE_SIZE", "PagedMemory", "PageFault", "GuestProgram",
    "GuestState", "GuestOS",
]
