"""Guest architectural state (registers, flags, program counter)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.guest.isa import FLAG_NAMES, FPR_NAMES, GPR_NAMES, VR_NAMES, u32


class GuestState:
    """The guest-visible architectural state.

    Both DARCO components hold one: the x86 component's copy is authoritative,
    the co-designed component's copy is the "emulated x86 state" the paper
    validates against it.
    """

    __slots__ = ("gpr", "fpr", "vr", "flags", "eip")

    def __init__(self):
        self.gpr: List[int] = [0] * len(GPR_NAMES)
        self.fpr: List[float] = [0.0] * len(FPR_NAMES)
        self.vr: List[List[int]] = [[0, 0, 0, 0] for _ in VR_NAMES]
        self.flags: List[int] = [0] * len(FLAG_NAMES)
        self.eip: int = 0

    # -- named access (tests, debug tools) ----------------------------------

    def get(self, name: str):
        if name in GPR_NAMES:
            return self.gpr[GPR_NAMES.index(name)]
        if name in FPR_NAMES:
            return self.fpr[FPR_NAMES.index(name)]
        if name in VR_NAMES:
            return list(self.vr[VR_NAMES.index(name)])
        if name in FLAG_NAMES:
            return self.flags[FLAG_NAMES.index(name)]
        if name == "EIP":
            return self.eip
        raise KeyError(name)

    def set(self, name: str, value) -> None:
        if name in GPR_NAMES:
            self.gpr[GPR_NAMES.index(name)] = u32(value)
        elif name in FPR_NAMES:
            self.fpr[FPR_NAMES.index(name)] = float(value)
        elif name in VR_NAMES:
            self.vr[VR_NAMES.index(name)] = [u32(v) for v in value]
        elif name in FLAG_NAMES:
            self.flags[FLAG_NAMES.index(name)] = 1 if value else 0
        elif name == "EIP":
            self.eip = u32(value)
        else:
            raise KeyError(name)

    # -- snapshot / restore (checkpointing, validation) ---------------------

    def snapshot(self) -> dict:
        return {
            "gpr": list(self.gpr),
            "fpr": list(self.fpr),
            "vr": [list(v) for v in self.vr],
            "flags": list(self.flags),
            "eip": self.eip,
        }

    def restore(self, snap: dict) -> None:
        self.gpr = list(snap["gpr"])
        self.fpr = list(snap["fpr"])
        self.vr = [list(v) for v in snap["vr"]]
        self.flags = list(snap["flags"])
        self.eip = snap["eip"]

    def copy(self) -> "GuestState":
        other = GuestState()
        other.restore(self.snapshot())
        return other

    # -- comparison (correctness validation) --------------------------------

    def diff(self, other: "GuestState") -> Dict[str, tuple]:
        """Map of register name -> (mine, theirs) for every mismatch."""
        out = {}
        for i, name in enumerate(GPR_NAMES):
            if self.gpr[i] != other.gpr[i]:
                out[name] = (self.gpr[i], other.gpr[i])
        for i, name in enumerate(FPR_NAMES):
            mine, theirs = self.fpr[i], other.fpr[i]
            if mine != theirs and not (mine != mine and theirs != theirs):
                out[name] = (mine, theirs)
        for i, name in enumerate(VR_NAMES):
            if self.vr[i] != other.vr[i]:
                out[name] = (list(self.vr[i]), list(other.vr[i]))
        for i, name in enumerate(FLAG_NAMES):
            if self.flags[i] != other.flags[i]:
                out[name] = (self.flags[i], other.flags[i])
        if self.eip != other.eip:
            out["EIP"] = (self.eip, other.eip)
        return out

    def matches(self, other: "GuestState",
                ignore: Optional[set] = None) -> bool:
        diff = self.diff(other)
        if ignore:
            diff = {k: v for k, v in diff.items() if k not in ignore}
        return not diff

    def __repr__(self):
        regs = " ".join(
            f"{name}={self.gpr[i]:#x}" for i, name in enumerate(GPR_NAMES))
        flags = "".join(
            name[0] if bit else "-"
            for name, bit in zip(FLAG_NAMES, self.flags))
        return f"<GuestState eip={self.eip:#x} {regs} flags={flags}>"
