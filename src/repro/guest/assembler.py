"""A small builder-style assembler for guest programs.

Workloads and tests construct guest code through this API rather than a text
assembler: it is explicit, checkable, and supports labels with fixups::

    asm = Assembler()
    asm.label("top")
    asm.mov(EAX, 10)
    asm.add(EAX, EBX)
    asm.dec(ECX)
    asm.jne("top")
    asm.exit(0)
    program = asm.program()

Branch/call targets may be label names (fixed up at layout time) or absolute
integer addresses.  Instruction methods are the lower-cased mnemonics from
:mod:`repro.guest.isa`.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from repro.guest.encoding import encode_instr
from repro.guest.isa import (
    INSN_SPECS, FReg, GuestInstr, Imm, Mem, Reg, VReg,
)
from repro.guest.program import (
    DEFAULT_CODE_BASE, DEFAULT_STACK_TOP, GuestProgram,
)
from repro.guest.syscalls import SYS_EXIT

# Register operand singletons for convenient importing.
EAX, ECX, EDX, EBX = Reg("EAX"), Reg("ECX"), Reg("EDX"), Reg("EBX")
ESP, EBP, ESI, EDI = Reg("ESP"), Reg("EBP"), Reg("ESI"), Reg("EDI")
F0, F1, F2, F3 = FReg("F0"), FReg("F1"), FReg("F2"), FReg("F3")
F4, F5, F6, F7 = FReg("F4"), FReg("F5"), FReg("F6"), FReg("F7")
V0, V1, V2, V3 = VReg("V0"), VReg("V1"), VReg("V2"), VReg("V3")
V4, V5, V6, V7 = VReg("V4"), VReg("V5"), VReg("V6"), VReg("V7")


def M(base: Optional[Reg] = None, index: Optional[Reg] = None,
      scale: int = 1, disp: int = 0) -> Mem:
    """Build a memory operand: ``[base + index*scale + disp]``."""
    return Mem(
        base=base.name if base is not None else None,
        index=index.name if index is not None else None,
        scale=scale,
        disp=disp,
    )


class AssemblyError(Exception):
    """Raised for malformed assembly (unknown label, bad operand...)."""


class Assembler:
    """Accumulates instructions and lays them out into a GuestProgram."""

    def __init__(self, base: int = DEFAULT_CODE_BASE):
        self.base = base
        self._instrs: List[GuestInstr] = []
        self._labels: Dict[str, int] = {}        # label -> instruction index
        self._fixups: List[tuple] = []           # (instr idx, operand idx, label)
        self._data: Dict[int, bytes] = {}
        self._unique = 0

    # -- labels --------------------------------------------------------------

    def label(self, name: str) -> str:
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        self._unique += 1
        return f"{stem}_{self._unique}"

    # -- data segments -------------------------------------------------------

    def data(self, addr: int, blob: bytes) -> int:
        """Place raw bytes at an absolute address; returns the address."""
        self._data[addr] = bytes(blob)
        return addr

    # -- instruction emission ------------------------------------------------

    def emit(self, mnemonic: str, *operands) -> None:
        if mnemonic not in INSN_SPECS:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
        converted = []
        for i, operand in enumerate(operands):
            if isinstance(operand, str):
                # Label reference: placeholder immediate, fixed up at layout.
                self._fixups.append((len(self._instrs), i, operand))
                operand = Imm(0)
            elif isinstance(operand, int):
                operand = Imm(operand)
            elif isinstance(operand, float):
                raise AssemblyError(
                    "float immediates are not encodable; place doubles in a "
                    "data segment and FLD them")
            converted.append(operand)
        self._instrs.append(GuestInstr(mnemonic, tuple(converted)))

    def __getattr__(self, name: str):
        mnemonic = name.upper()
        if mnemonic in INSN_SPECS:
            return lambda *operands: self.emit(mnemonic, *operands)
        raise AttributeError(name)

    # -- convenience macros ----------------------------------------------------

    def exit(self, code: int = 0) -> None:
        """Emit the conventional process-exit syscall sequence."""
        self.emit("MOV", EAX, Imm(SYS_EXIT))
        self.emit("MOV", EBX, Imm(code))
        self.emit("SYSCALL")

    @contextmanager
    def counted_loop(self, reg: Reg, count: Union[int, Reg]):
        """Emit ``mov reg, count; top: ... ; dec reg; jne top``."""
        top = self.fresh_label("loop")
        self.emit("MOV", reg, count if isinstance(count, Reg) else Imm(count))
        self.label(top)
        yield top
        self.emit("DEC", reg)
        self.emit("JNE", top)

    # -- layout ----------------------------------------------------------------

    def program(self, entry: Optional[str] = None,
                stack_top: int = DEFAULT_STACK_TOP) -> GuestProgram:
        """Lay out the accumulated code and return the program image."""
        # First pass: compute instruction addresses (lengths are operand-kind
        # dependent but not value dependent, so one pass suffices).
        addrs = []
        pos = self.base
        encoded = []
        for instr in self._instrs:
            blob = encode_instr(instr)
            addrs.append(pos)
            encoded.append(bytearray(blob))
            pos += len(blob)

        label_addrs = {}
        for name, index in self._labels.items():
            if index >= len(addrs):
                label_addrs[name] = pos  # label at end of code
            else:
                label_addrs[name] = addrs[index]

        # Second pass: patch label immediates in place.
        for instr_idx, op_idx, label in self._fixups:
            if label not in label_addrs:
                raise AssemblyError(f"undefined label {label!r}")
            target = label_addrs[label]
            blob = encoded[instr_idx]
            offset = self._imm_offset(self._instrs[instr_idx], op_idx)
            struct.pack_into("<I", blob, offset, target & 0xFFFFFFFF)

        code = b"".join(bytes(b) for b in encoded)
        entry_addr = label_addrs[entry] if entry else self.base
        return GuestProgram(
            code=code,
            base=self.base,
            entry=entry_addr,
            data=dict(self._data),
            stack_top=stack_top,
            labels=label_addrs,
        )

    @staticmethod
    def _imm_offset(instr: GuestInstr, op_idx: int) -> int:
        """Byte offset of operand ``op_idx``'s imm32 payload within the
        encoded instruction (operand must be an immediate)."""
        offset = 1  # opcode byte
        for i, operand in enumerate(instr.operands):
            if i == op_idx:
                if not isinstance(operand, Imm):
                    raise AssemblyError("label fixup on non-immediate operand")
                return offset + 1  # skip tag byte
            offset += _operand_size(operand)
        raise AssemblyError("operand index out of range")


def _operand_size(operand) -> int:
    if isinstance(operand, (Reg, FReg, VReg)):
        return 2
    if isinstance(operand, Imm):
        return 5
    if isinstance(operand, Mem):
        size = 2 + 4  # tag + mode + disp
        if operand.base is not None:
            size += 1
        if operand.index is not None:
            size += 1
        return size
    raise AssemblyError(f"unknown operand {operand!r}")
