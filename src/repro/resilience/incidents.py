"""Structured incident log for the resilience layer.

Every recovery action taken by the system — a divergence resync, a
watchdog firing, a rollback storm triggering demotion — is recorded as
an :class:`Incident`.  The log is deterministic for a deterministic run:
``signature()`` hashes a canonical JSON rendering so two runs with the
same seed can be compared with a single string equality (the fault
campaign's replayability check).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Schema version for incident logs exported to disk (see
#: :meth:`IncidentLog.save`); bump on any layout change.
INCIDENT_SCHEMA_VERSION = 1
KIND_INCIDENT_LOG = "incident_log"

# Incident kinds recorded by the system.
KIND_STATE_DIVERGENCE = "state_divergence"      # register/EIP mismatch at validation
KIND_MEMORY_DIVERGENCE = "memory_divergence"    # memory mismatch at validation
KIND_SYNC_LOST = "sync_lost"                    # co-designed side not at the syscall
KIND_LIVELOCK = "livelock"                      # watchdog: dispatches w/o retirement
KIND_ROLLBACK_STORM = "rollback_storm"          # per-unit assert/spec failure storm


@dataclass(frozen=True)
class Incident:
    """One recovery event.

    ``detail`` holds kind-specific, JSON-safe diagnostics (diff excerpts,
    stall counts, ...).  ``suspects`` are the implicated translation
    entry PCs, ``actions`` the quarantine steps taken, as
    ``"pc=0xADDR level=name"`` strings.
    """

    kind: str
    guest_icount: int
    detail: Dict[str, Any] = field(default_factory=dict)
    suspects: Tuple[int, ...] = ()
    actions: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "guest_icount": self.guest_icount,
            "detail": self.detail,
            "suspects": list(self.suspects),
            "actions": list(self.actions),
        }


class IncidentLog:
    """Append-only list of incidents with a content signature."""

    def __init__(self):
        self._incidents: List[Incident] = []

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self):
        return iter(self._incidents)

    def record(self, kind: str, guest_icount: int, detail: Dict[str, Any] = None,
               suspects: Tuple[int, ...] = (), actions: Tuple[str, ...] = ()) -> Incident:
        inc = Incident(kind=kind, guest_icount=guest_icount,
                       detail=dict(detail or {}), suspects=tuple(suspects),
                       actions=tuple(actions))
        self._incidents.append(inc)
        return inc

    @property
    def incidents(self) -> List[Incident]:
        return list(self._incidents)

    def count(self, kind: str = None) -> int:
        if kind is None:
            return len(self._incidents)
        return sum(1 for i in self._incidents if i.kind == kind)

    def kinds(self) -> List[str]:
        return [i.kind for i in self._incidents]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [i.as_dict() for i in self._incidents]

    def restore(self, dicts: List[Dict[str, Any]]) -> None:
        """Replace the log's contents from :meth:`as_dicts` output
        (checkpoint restore).  ``signature()`` is preserved across the
        round trip: ``as_dict`` already renders tuples as lists, so the
        canonical JSON form is unchanged."""
        self._incidents = [
            Incident(kind=d["kind"], guest_icount=d["guest_icount"],
                     detail=dict(d["detail"]),
                     suspects=tuple(d["suspects"]),
                     actions=tuple(d["actions"]))
            for d in dicts]

    def save(self, path) -> None:
        """Export the log as a versioned artifact (atomic write)."""
        from repro.ioutil import write_artifact
        write_artifact(path, KIND_INCIDENT_LOG, INCIDENT_SCHEMA_VERSION,
                       {"incidents": self.as_dicts(),
                        "signature": self.signature()})

    @classmethod
    def load(cls, path) -> "IncidentLog":
        """Load a saved log; raises :class:`repro.ioutil.SchemaError`
        on a corrupt or incompatible artifact."""
        from repro.ioutil import load_artifact
        payload = load_artifact(path, KIND_INCIDENT_LOG,
                                INCIDENT_SCHEMA_VERSION)
        log = cls()
        log.restore(payload["incidents"])
        return log

    def signature(self) -> str:
        """SHA-256 over a canonical JSON rendering of the whole log."""
        blob = json.dumps(self.as_dicts(), sort_keys=True,
                          separators=(",", ":"), default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()
