"""Seeded, deterministic fault injection for translated artifacts.

A :class:`FaultInjector` arms exactly one fault, described by a
:class:`FaultSpec` ``(site, ordinal, salt)``:

- ``site``    — which artifact class to corrupt (see :data:`SITES`);
- ``ordinal`` — fire at the Nth *eligible* event for that site (1-based),
  so the same spec always corrupts the same artifact in a deterministic
  run;
- ``salt``    — seeds a private :class:`random.Random` used for every
  choice the fault makes (which instruction, which bit, ...).

The injector is attached to a :class:`~repro.tol.tol.Tol` before the run
starts; it hooks translation-unit installation, the post-optimization IR
pipeline, the alias table and the chainer.  At most one fault fires per
run, after which every hook becomes a transparent pass-through.

Fault sites
-----------
``host_bitflip``          flip an immediate bit / rewrite an opcode in a
                          freshly installed unit's host code;
``ir_drop``               delete one architectural-effect IR op after
                          the optimization pipeline;
``ir_mutate``             flip a bit in an integer constant operand of a
                          post-optimization IR op;
``assert_invert``         invert one speculation assert
                          (``assert_z`` <-> ``assert_nz``) in an
                          installed superblock;
``alias_false_negative``  make the alias table miss one genuine
                          store/load conflict;
``stale_chain``           chain an exit to the wrong translation unit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.host.isa import CodeUnit, HostInstr, HostOp
from repro.tol.ir import Flag, IRInstr, IROp, Const, is_arch

SITES = (
    "host_bitflip",
    "ir_drop",
    "ir_mutate",
    "assert_invert",
    "alias_false_negative",
    "stale_chain",
)

#: Opcode rewrites for ``host_bitflip`` that preserve operand arity, so
#: the corrupted unit still executes (and diverges) instead of crashing
#: the host emulator.
_OP_FLIPS = {
    "add32": "sub32", "sub32": "add32",
    "and32": "or32", "or32": "xor32", "xor32": "and32",
    "cmpeq": "cmpne", "cmpne": "cmpeq",
    "cmpeqi": "cmpnei", "cmpnei": "cmpeqi",
    "cmplt32s": "cmple32s", "cmple32s": "cmplt32s",
    "shl32": "shr32", "shr32": "shl32",
    "mov": "not32", "neg32": "not32", "not32": "neg32",
    "addi32": "xori32", "xori32": "addi32",
}

#: Host ops whose integer immediate is safe to bit-flip (never a branch
#: target or checkpoint bookkeeping).
_IMM_FLIP_OPS = (
    frozenset({"li", "addi32", "andi32", "ori32", "xori32",
               "shli32", "shri32", "sari32", "cmpeqi", "cmpnei"})
)

#: Guest GPR homes in the host integer register file; corrupting the
#: *last* write to one of these in a unit is architecturally live (the
#: value survives to the unit's exit instead of being overwritten).
_GPR_HOME_RANGE = range(1, 9)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to arm: fire at the ``ordinal``-th eligible event of
    ``site``, with all random choices drawn from ``salt``."""

    site: str
    ordinal: int = 1
    salt: int = 0

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site: {self.site!r}")
        if self.ordinal < 1:
            raise ValueError("ordinal is 1-based")


class FaultInjector:
    """Arms one :class:`FaultSpec` against a TOL instance."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.rng = random.Random(spec.salt)
        self.fired = False
        self.fired_detail: Dict[str, Any] = {}
        self._seen = 0  # eligible events observed so far

    # -- wiring ----------------------------------------------------------------

    def attach(self, tol) -> None:
        """Hook the TOL's translation machinery for this fault site."""
        # Make the armed fault discoverable by checkpoint/bundle writers.
        tol.fault_injector = self
        site = self.spec.site
        if site in ("host_bitflip", "assert_invert"):
            tol.install_hook = self._on_install
        elif site in ("ir_drop", "ir_mutate"):
            tol.translator.ir_hook = self._on_ir
        elif site == "alias_false_negative":
            table = tol.host.alias_table
            orig = table.store_conflicts

            def wrapped(addr, size, seq):
                hit = orig(addr, size, seq)
                if hit and not self.fired:
                    self._seen += 1
                    if self._seen >= self.spec.ordinal:
                        self._fire({"addr": addr, "size": size, "seq": seq})
                        return False
                return hit

            table.store_conflicts = wrapped
        elif site == "stale_chain":
            cache = tol.cache
            orig_chain = cache.chain

            def chained(from_unit, exit_index, to_unit):
                target = to_unit
                if not self.fired:
                    self._seen += 1
                    if self._seen >= self.spec.ordinal:
                        wrong = self._pick_wrong_unit(cache, to_unit)
                        if wrong is not None:
                            target = wrong
                            self._fire({
                                "from_uid": from_unit.uid,
                                "exit_index": exit_index,
                                "intended_pc": to_unit.entry_pc,
                                "actual_pc": wrong.entry_pc,
                            })
                return orig_chain(from_unit, exit_index, target)

            cache.chain = chained

    # -- site implementations --------------------------------------------------

    def _fire(self, detail: Dict[str, Any]) -> None:
        self.fired = True
        self.fired_detail = {"site": self.spec.site,
                             "ordinal": self.spec.ordinal, **detail}

    def _on_install(self, unit: CodeUnit, variant) -> None:
        if self.fired:
            return
        if self.spec.site == "assert_invert":
            idxs = [i for i, ins in enumerate(unit.instrs)
                    if ins.op in HostOp.ASSERT]
        else:
            # Last flippable write per guest GPR home: those values are
            # live at the unit's exit, so the corruption is visible.
            last_write = {}
            for i, ins in enumerate(unit.instrs):
                if self._bitflip_eligible(ins):
                    last_write[ins.d] = i
            idxs = sorted(last_write.values())
        if not idxs:
            return
        self._seen += 1
        if self._seen < self.spec.ordinal:
            return
        idx = self.rng.choice(idxs)
        ins = unit.instrs[idx]
        before = ins.op
        if self.spec.site == "assert_invert":
            ins.op = "assert_nz" if ins.op == "assert_z" else "assert_z"
            detail = {"op_before": before, "op_after": ins.op}
        else:
            detail = self._bitflip(ins)
        # Drop any compiled fastpath (and the static timing profile) so
        # the corruption takes effect.
        unit.__dict__.pop("_fastprog", None)
        unit.__dict__.pop("_directprog", None)
        unit.__dict__.pop("_directprog_traced", None)
        unit.__dict__.pop("_timing_profile", None)
        self._fire({"uid": unit.uid, "entry_pc": unit.entry_pc,
                    "mode": unit.mode, "instr_index": idx, **detail})

    @staticmethod
    def _bitflip_eligible(ins: HostInstr) -> bool:
        if ins.d not in _GPR_HOME_RANGE:
            return False
        if ins.op == "mov" and ins.a == ins.d:
            # Register-allocation epilogue identity movs: their homes
            # were already written by the real producer, and corrupting
            # registers the next block immediately reloads makes the
            # fault latent far too often to be an interesting campaign.
            return False
        if ins.op in _OP_FLIPS:
            return True
        return ins.op in _IMM_FLIP_OPS and isinstance(ins.imm, int)

    def _bitflip(self, ins: HostInstr) -> Dict[str, Any]:
        choices = []
        if ins.op in _OP_FLIPS:
            choices.append("op")
        if ins.op in _IMM_FLIP_OPS and isinstance(ins.imm, int):
            choices.append("imm")
        kind = self.rng.choice(choices)
        if kind == "op":
            before = ins.op
            ins.op = _OP_FLIPS[before]
            return {"flip": "op", "op_before": before, "op_after": ins.op}
        bit = self.rng.randrange(0, 16)
        before = ins.imm
        ins.imm = ins.imm ^ (1 << bit)
        return {"flip": "imm", "bit": bit,
                "imm_before": before, "imm_after": ins.imm}

    def _on_ir(self, ops: List[IRInstr], entry_pc: int, mode: str,
               unrolled: bool = False) -> List[IRInstr]:
        if self.fired:
            return ops
        if unrolled:
            # Unrolled loop bodies are not an eligible IR fault target:
            # the plain variant always re-executes the residual
            # iterations behind them, overwriting whatever the corrupted
            # replica produced before any validation boundary — latent
            # by construction.  (Host-level sites still cover them.)
            return ops
        if self.spec.site == "ir_drop":
            # For stores, only the *last* store per displacement is a
            # candidate: in unrolled bodies every earlier replica is
            # overwritten before any validation boundary can observe the
            # missing write, which makes the fault latent by construction.
            last_store = {}
            idxs = []
            for i, op in enumerate(ops):
                if not self._drop_eligible(op):
                    continue
                if op.op in IROp.STORE:
                    last_store[(op.op, op.imm)] = i
                else:
                    idxs.append(i)
            idxs = sorted(idxs + list(last_store.values()))
        else:
            idxs = [i for i in range(len(ops))
                    if self._mutate_eligible(ops, i)]
        if not idxs:
            return ops
        self._seen += 1
        if self._seen < self.spec.ordinal:
            return ops
        idx = self.rng.choice(idxs)
        victim = ops[idx]
        if self.spec.site == "ir_drop":
            out = ops[:idx] + ops[idx + 1:]
            self._fire({"entry_pc": entry_pc, "mode": mode,
                        "dropped_op": victim.op,
                        "dropped_repr": repr(victim)})
            return out
        const_idxs = [i for i, s in enumerate(victim.srcs)
                      if isinstance(s, Const) and isinstance(s.value, int)]
        ci = self.rng.choice(const_idxs)
        bit = self.rng.randrange(0, 16)
        old = victim.srcs[ci].value
        new_srcs = list(victim.srcs)
        new_srcs[ci] = Const(old ^ (1 << bit))
        out = list(ops)
        out[idx] = victim.with_changes(srcs=tuple(new_srcs))
        self._fire({"entry_pc": entry_pc, "mode": mode, "op": victim.op,
                    "bit": bit, "const_before": old,
                    "const_after": old ^ (1 << bit)})
        return out

    @staticmethod
    def _drop_eligible(op: IRInstr) -> bool:
        # Only ops whose disappearance cannot break codegen: stores, or
        # ops writing guest architectural state (later readers then see
        # the stale architectural value — a clean silent-corruption
        # model).  Never touch control flow, and skip flag writes — they
        # are frequently dead, which makes the fault silently latent.
        if op.op in IROp.CONTROL:
            return False
        if op.op in IROp.STORE:
            return True
        if op.dst is None or not is_arch(op.dst) \
                or isinstance(op.dst, Flag):
            return False
        # A constant re-assignment (``mov EDX <- #1`` in a loop body)
        # usually rewrites the value the register already holds, so
        # dropping it is an identity: only computed values are candidates.
        return not (op.op == "mov" and len(op.srcs) == 1
                    and isinstance(op.srcs[0], Const))

    @staticmethod
    def _mutate_eligible(ops: List[IRInstr], idx: int) -> bool:
        op = ops[idx]
        if op.op in IROp.CONTROL:
            return False
        if op.op in IROp.STORE:
            # The only Const in a store is its address base; the bytes a
            # shifted address corrupts are rewritten by the next clean
            # store to the same displacement.
            return False
        if not any(isinstance(s, Const) and isinstance(s.value, int)
                   for s in op.srcs):
            return False
        # Flag materializations (ZF/SF/OF recomputed after every
        # arithmetic guest op) are overwritten long before the next
        # validation epoch — mutating their constants is latent.  In BBM
        # the computation flows through a temporary, so follow the
        # result one step: a value consumed *only* by flag writebacks
        # (or never consumed) is just as dead as a Flag destination.
        if isinstance(op.dst, Flag):
            return False
        if op.dst is None or is_arch(op.dst):
            return True
        for later in ops[idx + 1:]:
            if op.dst in later.srcs:
                if not (later.op == "mov"
                        and isinstance(later.dst, Flag)):
                    return True
            if later.dst == op.dst:
                break
        return False

    def _pick_wrong_unit(self, cache, intended: CodeUnit
                         ) -> Optional[CodeUnit]:
        candidates = sorted(
            (u for u in cache.units()
             if u.entry_pc != intended.entry_pc),
            key=lambda u: u.uid)
        if not candidates:
            return None
        return self.rng.choice(candidates)
