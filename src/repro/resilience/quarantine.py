"""Translation quarantine: a per-entry-PC escalation ladder.

When a translation is implicated in a divergence or a livelock, its
entry PC climbs a ladder of progressively more conservative execution
modes.  Each rung trades performance for trust:

====  ================  ==================================================
rung  name              effect on the entry PC
====  ================  ==================================================
0     clean             normal promotion pipeline (IM -> BBM -> SBM)
1     no_asserts        superblocks are rebuilt without speculation
                        asserts (SBX, the paper's demoted form)
2     bbm_only          no superblock formation at all; BBM stays allowed
3     interpret_only    never translated again; always interpreted
====  ================  ==================================================

The interpreter is the trusted executor of last resort, so the ladder
always converges: a persistently bad translation ends at rung 3 where it
cannot do harm.  Every escalation invalidates the cached units at the PC
(the code cache unlinks chains and the IBTC via its removal hook).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

LEVEL_NONE = 0
LEVEL_NO_ASSERTS = 1
LEVEL_BBM_ONLY = 2
LEVEL_INTERPRET_ONLY = 3

LEVEL_NAMES = {
    LEVEL_NONE: "clean",
    LEVEL_NO_ASSERTS: "no_asserts",
    LEVEL_BBM_ONLY: "bbm_only",
    LEVEL_INTERPRET_ONLY: "interpret_only",
}


class TranslationQuarantine:
    """Blacklist of translation entry PCs with escalation levels."""

    def __init__(self):
        self._levels: Dict[int, int] = {}
        self.escalations = 0
        #: Ladder edges traversed, keyed ``<from name>-><to name>`` —
        #: part of the fuzzer's coverage map (which rungs and which
        #: transitions a workload actually exercised).
        self.edges: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._levels)

    def level(self, pc: int) -> int:
        return self._levels.get(pc, LEVEL_NONE)

    def escalate(self, pc: int, floor: int = LEVEL_NONE) -> int:
        """Raise ``pc`` one rung (at least to ``floor``); returns the new
        level."""
        old = self.level(pc)
        new = min(LEVEL_INTERPRET_ONLY, max(old + 1, floor))
        self._levels[pc] = new
        self.escalations += 1
        edge = f"{LEVEL_NAMES[old]}->{LEVEL_NAMES[new]}"
        self.edges[edge] = self.edges.get(edge, 0) + 1
        return new

    def entries(self) -> List[Tuple[int, int]]:
        """Sorted ``(pc, level)`` pairs (deterministic reporting order)."""
        return sorted(self._levels.items())

    def summary(self) -> Dict[str, int]:
        """Count of quarantined PCs per level name."""
        out: Dict[str, int] = {}
        for level in self._levels.values():
            name = LEVEL_NAMES[level]
            out[name] = out.get(name, 0) + 1
        return out
