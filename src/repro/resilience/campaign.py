"""Fault campaigns: seeded sweeps over the fault-injection sites.

A campaign plans ``n`` :class:`~repro.resilience.faults.FaultSpec`\\ s
from one master seed, runs each against the built-in campaign workload in
``recover`` mode, and classifies every run:

``recovered``      the fault fired, a divergence was detected and the
                   controller resynced from the authoritative state;
``quarantined``    the fault fired and was absorbed by the escalation
                   ladder alone (watchdog or rollback storm), with no
                   state ever diverging at a validation point;
``latent``         the fault fired but never produced an observable
                   effect (e.g. corrupted code that was evicted before
                   diverging);
``not_triggered``  the run never reached the fault's trigger ordinal;
``failed``         the run crashed, or the final guest state does not
                   match the clean authoritative reference run.

For every non-``failed`` outcome the final architectural state, exit
code and stdout are bit-identical to a plain :class:`GuestEmulator` run
of the same program — that comparison is part of the classification, not
a separate check.  Records carry the incident-log signature, so two
campaigns from the same seed can be compared replay-for-replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDX, EDI, ESI, M
from repro.guest.emulator import GuestEmulator
from repro.guest.program import GuestProgram, pack_u32s
from repro.guest.syscalls import SYS_WRITE, GuestOS
from repro.tol.config import TolConfig
from repro.resilience.faults import SITES, FaultInjector, FaultSpec

#: Divergences caught by validation / synchronization => "recovered".
_DIVERGENCE_KINDS = frozenset(
    {"state_divergence", "memory_divergence", "sync_lost", "guest_error"})
#: Incidents handled inside the TOL by the ladder alone => "quarantined".
_QUARANTINE_KINDS = frozenset({"livelock", "rollback_storm"})

#: Default campaign sites: every site that fires reliably on the built-in
#: workload (``alias_false_negative`` needs a genuine speculative
#: conflict and is exercised by its own unit test instead).
DEFAULT_SITES = tuple(s for s in SITES if s != "alias_false_negative")

#: Per-site trigger-ordinal ranges (inclusive): how deep into the run the
#: fault may be planted.  Bounded so every planned ordinal lands in an
#: artifact the campaign workload actually *consumes* — e.g. the third
#: bitflip-eligible install is the unrolled inner loop, whose eligible
#: writes sit on a cold residual path, and the second assert-bearing
#: install is the outer-loop superblock that is built on the run's last
#: visit and never dispatched.  Faults planted there are latent by
#: construction, which is a property of the artifact, not of the
#: resilience machinery under test.
_ORDINAL_RANGE = {
    "host_bitflip": 2,
    "ir_drop": 4,
    "ir_mutate": 4,
    "assert_invert": 1,
    "alias_false_negative": 1,
    "stale_chain": 3,
}


def build_campaign_program() -> GuestProgram:
    """The campaign workload: hot nested loops (so code is promoted to
    superblocks, chained and IBTC'd) with memory traffic and a syscall
    per outer iteration (so validation epochs land mid-run).

    Every architectural write feeds the live accumulator ``ESI`` —
    including a store/load read-back through memory — so a corrupted
    value or a dropped store propagates to the next validation epoch
    instead of being silently overwritten by the following (clean)
    iteration.  That keeps the campaign's latent-fault rate near zero."""
    asm = Assembler()
    src = asm.data(0x9000, pack_u32s([7, 21, 35, 1]))
    dst = 0x9100
    msg = asm.data(0xB000, b".")
    asm.mov(ESI, 0)
    with asm.counted_loop(EDI, 12):
        with asm.counted_loop(ECX, 40):
            asm.mov(EAX, M(None, disp=src))
            asm.add(EAX, 3)
            asm.xor(EAX, 0x17)
            asm.add(ESI, EAX)
            asm.mov(M(None, disp=dst), ESI)
            asm.mov(EBX, M(None, disp=dst))
            asm.add(EBX, ESI)
            asm.mov(M(None, disp=dst + 4), EBX)
            asm.add(ESI, EBX)
        asm.mov(EAX, SYS_WRITE)
        asm.mov(EBX, 1)
        asm.mov(ECX, msg)
        asm.mov(EDX, 1)
        asm.syscall()
    asm.mov(EAX, ESI)
    asm.exit(0)
    return asm.program()


def campaign_config(mode: str = "recover",
                    overrides: Optional[Dict] = None) -> TolConfig:
    """Aggressive promotion so translations (the fault surface) dominate
    the run even on the small campaign workload.  ``assert_fail_limit``
    sits above the workload's natural failure count (one per superblock,
    on the final loop exit) but low enough that an inverted assert trips
    the rollback-storm rung of the quarantine ladder within a few outer
    iterations.

    ``overrides`` (field-name -> value) lets callers tune the
    protection machinery under test — ``darco inject`` threads
    ``watchdog_stall_limit`` and ``event_budget`` through here."""
    config = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       recovery_mode=mode, watchdog_stall_limit=50,
                       assert_fail_limit=2)
    if overrides:
        config = config.with_overrides(overrides)
    return config


def plan_campaign(seed: int, n: int,
                  sites: Sequence[str] = DEFAULT_SITES
                  ) -> List[FaultSpec]:
    """``n`` fault specs, round-robin over ``sites``, ordinals and salts
    drawn from ``seed`` (same seed => same plan, always)."""
    rng = random.Random(seed)
    specs = []
    for i in range(n):
        site = sites[i % len(sites)]
        ordinal = rng.randint(1, _ORDINAL_RANGE[site])
        specs.append(FaultSpec(site=site, ordinal=ordinal,
                               salt=rng.getrandbits(32)))
    return specs


@dataclass
class FaultRunRecord:
    """Outcome of one fault run (picklable for the sweep runner)."""

    site: str
    ordinal: int
    salt: int
    mode: str
    status: str = "failed"
    triggered: bool = False
    incidents: int = 0
    incident_kinds: Tuple[str, ...] = ()
    quarantined: int = 0
    recoveries: int = 0
    exit_code: Optional[int] = None
    guest_icount: int = 0
    final_match: bool = False
    error: Optional[str] = None
    log_signature: str = ""
    fired_detail: Dict = field(default_factory=dict)

    @property
    def caught(self) -> bool:
        return self.status in ("recovered", "quarantined")


@dataclass
class CampaignReport:
    seed: int
    mode: str
    records: List[FaultRunRecord]

    @property
    def by_status(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.status] = out.get(record.status, 0) + 1
        return out

    @property
    def triggered(self) -> List[FaultRunRecord]:
        return [r for r in self.records if r.triggered]

    @property
    def all_triggered_caught(self) -> bool:
        return all(r.caught for r in self.triggered)

    def signature(self) -> str:
        """Replayability digest over every run's incident-log signature."""
        import hashlib
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                f"{record.site}:{record.ordinal}:{record.salt}:"
                f"{record.status}:{record.log_signature}\n".encode())
        return digest.hexdigest()

    def table(self) -> str:
        lines = [f"{'site':<22}{'ord':>4}{'status':>15}{'incidents':>11}"
                 f"{'quarantined':>13}{'match':>7}"]
        for r in self.records:
            lines.append(
                f"{r.site:<22}{r.ordinal:>4}{r.status:>15}"
                f"{r.incidents:>11}{r.quarantined:>13}"
                f"{'yes' if r.final_match else 'NO':>7}")
        by = self.by_status
        summary = ", ".join(f"{k}={v}" for k, v in sorted(by.items()))
        lines.append(f"-- {len(self.records)} faults: {summary}")
        return "\n".join(lines)


def _reference_run(program: GuestProgram):
    """Clean authoritative run: final state snapshot, exit code, stdout."""
    emulator = GuestEmulator(program, os=GuestOS())
    emulator.run()
    return (emulator.state, emulator.os.exit_code,
            bytes(emulator.os.stdout))


def run_fault_case(site: str, ordinal: int, salt: int,
                   mode: str = "recover",
                   program: Optional[GuestProgram] = None,
                   config_overrides: Optional[Dict] = None
                   ) -> FaultRunRecord:
    """Run the campaign workload with one armed fault and classify it."""
    from repro.system.controller import Controller

    if program is None:
        program = build_campaign_program()
    ref_state, ref_exit, ref_stdout = _reference_run(program)
    spec = FaultSpec(site=site, ordinal=ordinal, salt=salt)
    injector = FaultInjector(spec)
    record = FaultRunRecord(site=site, ordinal=ordinal, salt=salt,
                            mode=mode)
    controller = Controller(
        program, config=campaign_config(mode, config_overrides))
    tol = controller.codesigned.tol
    injector.attach(tol)
    try:
        result = controller.run()
    except Exception as exc:  # strict mode raises; recover must not
        record.status = "failed"
        record.error = f"{type(exc).__name__}: {exc}"
        record.triggered = injector.fired
        record.fired_detail = injector.fired_detail
        record.incidents = len(tol.incidents)
        record.incident_kinds = tuple(sorted(set(tol.incidents.kinds())))
        record.log_signature = tol.incidents.signature()
        return record

    record.triggered = injector.fired
    record.fired_detail = injector.fired_detail
    record.incidents = len(tol.incidents)
    record.incident_kinds = tuple(sorted(set(tol.incidents.kinds())))
    record.quarantined = len(tol.quarantine)
    record.recoveries = controller.recoveries
    record.exit_code = result.exit_code
    record.guest_icount = result.guest_icount
    record.log_signature = tol.incidents.signature()
    record.final_match = (
        not controller.codesigned.state.diff(ref_state)
        and not controller.x86.state.diff(ref_state)
        and result.exit_code == ref_exit
        and result.stdout == ref_stdout)

    kinds = set(record.incident_kinds)
    if not record.triggered:
        record.status = "not_triggered"
    elif not record.final_match:
        record.status = "failed"
    elif kinds & _DIVERGENCE_KINDS:
        record.status = "recovered"
    elif kinds & _QUARANTINE_KINDS:
        record.status = "quarantined"
    else:
        record.status = "latent"
    return record


def run_campaign(seed: int, n: int = 50,
                 sites: Sequence[str] = DEFAULT_SITES,
                 mode: str = "recover",
                 n_jobs: int = 1,
                 use_cache: bool = False,
                 progress=None,
                 config_overrides: Optional[Dict] = None
                 ) -> CampaignReport:
    """Plan and run a whole campaign; ``n_jobs > 1`` fans out over the
    sweep runner (``fault_run`` task).  ``config_overrides`` tunes the
    campaign :class:`TolConfig` (e.g. ``watchdog_stall_limit``,
    ``event_budget``) identically in both execution paths."""
    specs = plan_campaign(seed, n, sites)
    if n_jobs == 1:
        records = []
        for i, spec in enumerate(specs):
            record = run_fault_case(spec.site, spec.ordinal, spec.salt,
                                    mode=mode,
                                    config_overrides=config_overrides)
            records.append(record)
            if progress is not None:
                progress(record, i + 1, len(specs))
        return CampaignReport(seed=seed, mode=mode, records=records)

    from repro.harness.parallel import SweepJob, raise_on_errors, sweep
    jobs = [SweepJob(task="fault_run",
                     params={"site": spec.site, "ordinal": spec.ordinal,
                             "salt": spec.salt, "mode": mode,
                             **({"config_overrides": config_overrides}
                                if config_overrides else {})},
                     label=f"{spec.site}#{spec.ordinal}")
            for spec in specs]
    results = sweep(jobs, n_jobs=n_jobs, use_cache=use_cache,
                    progress=progress)
    records = raise_on_errors(results)
    return CampaignReport(seed=seed, mode=mode, records=records)
