"""Resilience layer: fault injection, divergence recovery, watchdog.

The paper's correctness story (§V-D) is that the authoritative x86
component catches any divergence the TOL introduces.  This package turns
that detection into *recovery*: translated code is treated as fallible,
bad translations are quarantined with an escalation ladder, every
incident is logged in a structured, replayable form, and a seeded
fault-injection framework exercises the whole machinery on demand.

Submodules
----------
- :mod:`repro.resilience.incidents`  — structured incident log;
- :mod:`repro.resilience.quarantine` — per-entry-PC escalation ladder;
- :mod:`repro.resilience.faults`     — seeded fault injector (import
  directly: ``from repro.resilience.faults import FaultInjector``);
- :mod:`repro.resilience.campaign`   — fault-campaign runner (import
  directly; it depends on the controller, which depends on the TOL,
  which imports this package — keep the package root cycle-free).
"""

from repro.resilience.incidents import Incident, IncidentLog
from repro.resilience.quarantine import (
    LEVEL_BBM_ONLY, LEVEL_INTERPRET_ONLY, LEVEL_NAMES, LEVEL_NO_ASSERTS,
    LEVEL_NONE, TranslationQuarantine,
)

__all__ = [
    "Incident", "IncidentLog",
    "TranslationQuarantine", "LEVEL_NONE", "LEVEL_NO_ASSERTS",
    "LEVEL_BBM_ONLY", "LEVEL_INTERPRET_ONLY", "LEVEL_NAMES",
]
