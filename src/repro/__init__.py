"""DARCO — a simulation infrastructure for HW/SW co-designed processors.

Reproduction of Kumar et al., "HW/SW Co-designed Processors: Challenges,
Design Choices and a Simulation Infrastructure for Evaluation", ISPASS 2017.

Public API highlights:

- :mod:`repro.guest` — guest ISA, assembler, reference emulator.
- :mod:`repro.host` — host RISC ISA and functional emulator.
- :mod:`repro.tol` — the Translation Optimization Layer.
- :mod:`repro.system` — the controller tying components together.
- :mod:`repro.timing` — the parameterized in-order timing simulator.
- :mod:`repro.power` — the analytic power/energy model.
- :mod:`repro.workloads` — the SPEC2006/Physicsbench-shaped kernel suite.
- :mod:`repro.harness` — per-figure experiment drivers.
"""

__version__ = "1.0.0"
