"""Cost-model constants (in host instructions).

DARCO's TOL is itself compiled to the host ISA, so its activity shows up as
host instructions in the dynamic stream (paper Fig. 6/7).  Our TOL runs in
Python; every TOL activity therefore *charges* a host-instruction cost from
this table, proportional to the work actually performed.  The constants were
calibrated once against the paper's reported overhead distribution and are
deliberately centralized so ablation studies can scale them.
"""

# --- Interpreter (IM) -------------------------------------------------------
#: Dispatch + decode overhead per interpreted guest instruction.
INTERP_DISPATCH = 12
#: Additional cost per IR operation evaluated by the interpreter.
INTERP_PER_IR_OP = 2
#: Extra cost for interpreter-only complex instructions (per element for
#: string ops, flat for syscall marshalling).
INTERP_COMPLEX_ELEMENT = 6
#: Profiling cost per interpreted basic-block boundary (repetition counters).
INTERP_PROFILE_BB = 10

# --- Basic block translator (BBM) ------------------------------------------
#: Fixed per-translation cost (allocation, bookkeeping, code cache insert).
BB_TRANSLATE_FIXED = 400
#: Per guest instruction decoded and translated.
BB_TRANSLATE_PER_GUEST_INSN = 60
#: Per IR op processed by the basic optimizer and code generator.
BB_TRANSLATE_PER_IR_OP = 14

# --- Superblock translator (SBM) --------------------------------------------
#: Fixed per-superblock cost (region selection, buffers, cache insert).
SB_TRANSLATE_FIXED = 550
#: Per guest instruction included in the superblock.
SB_TRANSLATE_PER_GUEST_INSN = 28
#: Per IR op, per optimization pass that processed it.
SB_TRANSLATE_PER_IR_OP_PASS = 3
#: Scheduler/register allocator cost per IR op (list scheduling dominates).
SB_SCHEDULE_PER_IR_OP = 8

# --- Control transfer between TOL and the code cache ------------------------
#: Prologue: stack switch and state handoff when TOL dispatches to the
#: code cache (paper category "Prologue").
PROLOGUE = 14
#: Epilogue: returning control to TOL (charged to the same category).
EPILOGUE = 12
#: Code cache hash lookup (paper category "Code $ lookup").
CC_LOOKUP = 16
#: Checking whether an exit can be chained, and patching it.
CHAIN_ATTEMPT = 22
#: Filling an IBTC entry after a miss (charged to chaining, per paper's
#: grouping of translation linking work).
IBTC_FILL = 26

# --- "Others" ----------------------------------------------------------------
#: TOL one-time initialization.
TOL_INIT = 4000
#: Main-loop control flow per TOL invocation.
TOL_MAINLOOP = 8
#: Statistics collection per synchronization event.
TOL_STATS_EVENT = 30

# --- Costs modelled inside the code cache (application stream) ---------------
#: An IBTC hit executes an inline lookup sequence (hash, compare, load).
IBTC_HIT_INLINE = 4
#: Inline profiling counter update per BBM unit execution.
BBM_PROFILE_INLINE = 3
