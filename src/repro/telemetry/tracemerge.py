"""Merge per-process span files into one Perfetto timeline.

The serve platform writes one span file per participating process
(:class:`~repro.telemetry.tracectx.SpanFileWriter`): ``client-<pid>``
for ``darco submit``, ``service-<pid>`` for the asyncio service,
``worker-<pid>`` for each shard attempt.  Every event is stamped with
epoch-microsecond timestamps and carries ``args.trace_id`` /
``args.job``, so assembling a job's end-to-end story is a filter, a
stable sort, and a normalisation — no clock negotiation, no live
service required (``darco trace --job`` works from the trace directory
alone, even after the service exited).

The merged document is a standard Chrome trace-event JSON dict:
process-name metadata is synthesised from each span file's header line
so Perfetto labels the client / service / worker tracks, and all
timestamps are shifted down by the earliest event's so the timeline
starts at zero.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry.tracectx import SPAN_FILE_VERSION

#: Phases the merge accepts (anything else in a span file is a bug in
#: the writer, and dropping it beats producing an unloadable trace).
_KNOWN_PHASES = ("B", "E", "X", "i", "C", "M")


def read_span_file(path) -> Dict[str, Any]:
    """One span file → ``{"header": ..., "events": [...]}``.

    Torn trailing lines (a killed writer) and unknown phases are
    skipped; a missing/foreign header yields a synthetic one so merge
    still labels the track.
    """
    path = Path(path)
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {"header": None, "events": []}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # torn line from a killed process
        if not isinstance(obj, dict):
            continue
        if obj.get("kind") == "span_file_header":
            if obj.get("v") == SPAN_FILE_VERSION:
                header = obj
            continue
        if obj.get("ph") not in _KNOWN_PHASES:
            continue
        events.append(obj)
    if header is None:
        stem = path.stem  # e.g. worker-1234
        role, _, pid = stem.rpartition("-")
        header = {"role": role or stem,
                  "pid": int(pid) if pid.isdigit() else 0,
                  "v": SPAN_FILE_VERSION, "synthetic": True}
    return {"header": header, "events": events}


def _matches(event: Dict[str, Any], trace_id: Optional[str],
             job: Optional[str]) -> bool:
    args = event.get("args") or {}
    if trace_id is not None and args.get("trace_id") != trace_id:
        return False
    if job is not None:
        ev_job = args.get("job", "")
        # Jobs are addressed by key prefix everywhere else in the CLI;
        # honour the same convention here.
        if not isinstance(ev_job, str) or not ev_job.startswith(job):
            return False
    return True


def merge_trace(trace_dir, trace_id: Optional[str] = None,
                job: Optional[str] = None) -> Dict[str, Any]:
    """Assemble one Chrome trace dict from every span file in
    ``trace_dir``, keeping only events matching ``trace_id`` and/or
    ``job`` (both ``None`` = everything)."""
    trace_dir = Path(trace_dir)
    files = sorted(trace_dir.glob("*.jsonl")) if trace_dir.is_dir() else []
    merged: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    roles: Dict[int, str] = {}
    trace_ids = set()
    contributing: List[str] = []
    for path in files:
        loaded = read_span_file(path)
        header = loaded["header"]
        kept = [ev for ev in loaded["events"]
                if _matches(ev, trace_id, job)]
        if not kept:
            continue
        contributing.append(path.name)
        pid = int(header.get("pid", 0))
        roles[pid] = str(header.get("role", "unknown"))
        for ev in kept:
            tid = (ev.get("args") or {}).get("trace_id")
            if tid:
                trace_ids.add(tid)
        merged.extend(kept)
    # Normalise to a zero-based timeline (Perfetto renders epoch-µs
    # offsets fine, but zero-based diffs cleanly across runs).
    numeric_ts = [ev["ts"] for ev in merged
                  if isinstance(ev.get("ts"), (int, float))]
    origin = min(numeric_ts) if numeric_ts else 0
    for ev in merged:
        if isinstance(ev.get("ts"), (int, float)):
            ev["ts"] = ev["ts"] - origin
    merged.sort(key=lambda ev: (ev.get("ts", 0), ev.get("pid", 0),
                                ev.get("tid", 0),
                                0 if ev.get("ph") == "B" else 1))
    for pid in sorted(roles):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": roles[pid]}})
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": "lifecycle"}})
    return {"traceEvents": meta + merged,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_ids": sorted(trace_ids),
                "job": job or "",
                "origin_epoch_us": origin,
                "span_files": contributing,
                "span_files_scanned": len(files),
            }}


def write_merged_trace(trace_dir, out_path,
                       trace_id: Optional[str] = None,
                       job: Optional[str] = None) -> Dict[str, Any]:
    """Merge and atomically write; returns the merged dict (plain JSON,
    not the artifact envelope: Perfetto must open the file as-is)."""
    from repro.ioutil import atomic_write_bytes
    doc = merge_trace(trace_dir, trace_id=trace_id, job=job)
    blob = json.dumps(doc, separators=(",", ":")).encode()
    atomic_write_bytes(out_path, blob)
    return doc


def _strip_pid(span_id: Any) -> Any:
    """``role:pid:seq`` → ``role:seq`` (pids vary run to run; the role
    and per-writer sequence number are the stable identity)."""
    if isinstance(span_id, str) and span_id.count(":") == 2:
        role, _, seq = span_id.split(":")
        return f"{role}:{seq}"
    return span_id


def strip_wallclock(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """A merged trace with every run-varying field removed — what two
    runs of the same job must agree on exactly (the determinism half
    of the cross-process tests).  Pids are replaced by the process
    role, span ids keep only their role and per-writer sequence, and
    events are re-sorted by that stable identity (ts order can differ
    across runs for near-simultaneous events in different processes).
    """
    roles: Dict[int, str] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            roles[ev.get("pid", 0)] = ev.get("args", {}).get("name", "")
    skeleton = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M":
            continue
        args = {k: v for k, v in (ev.get("args") or {}).items()
                if k not in ("duration_s", "ts", "wall", "icount")}
        for key in ("span_id", "parent_span_id"):
            if key in args:
                args[key] = _strip_pid(args[key])
        skeleton.append({
            "name": ev.get("name"), "cat": ev.get("cat"),
            "ph": ev.get("ph"),
            "role": roles.get(ev.get("pid", 0), "unknown"),
            "tid": ev.get("tid", 0),
            "args": args,
        })
    skeleton.sort(key=lambda ev: json.dumps(ev, sort_keys=True))
    return skeleton
