"""Collector callbacks scraping component-native counters into the
metrics registry.

Every component of the tri-component system keeps its own plain-int
counters in the hot path (they predate telemetry — the paper's figures
are read off them); these collectors are the single place where those
native counters acquire stable instrument names.  They run only at
snapshot boundaries, so registering them costs nothing per dispatch.

Instrument namespace:

=================  =====================================================
``tol.*``          TOL dispatch machinery: translations, rollbacks,
                   chaining, promotion, watchdog, overhead categories
``cache.*``        code cache: hits/misses/insertions/evictions/flushes
``host.*``         host emulator: committed/wasted instructions, IBTC,
                   fastpath vs slow-path segment split
``mode.retired.*`` dynamic guest instructions per execution mode
``resilience.*``   incidents, quarantine ladder, armed/fired faults
``cov.*``          TOL-path coverage edges for the fuzzer: unit-exit
                   arms, translation shapes, direct-tier
                   promotion/demotion outcomes, quarantine ladder
                   transitions, sanitizer checks
``controller.*``   synchronization protocol: syscalls, data requests,
                   validations, recoveries, checkpoints
``timing.*``       timing model: cycles, per-unit-class issue counts,
                   branch/cache statistics, stall attribution
``sweep.*``        harness-side: task counts, cache hits, retries
=================  =====================================================
"""

from __future__ import annotations

from repro.tol.overhead import CATEGORIES


def register_tol_collectors(telemetry, tol) -> None:
    """Scrape the TOL and everything it owns (code cache, host
    emulator, profiler, quarantine, incident log, armed fault)."""

    def collect(reg):
        stats = tol.stats
        reg.set_counter("tol.guest_icount", tol.guest_icount)
        reg.set_counter("tol.translations.bb",
                        tol.translator.bb_translations)
        reg.set_counter("tol.translations.sb",
                        tol.translator.sb_translations)
        reg.set_counter("tol.translations.sbx",
                        tol.translator.sbx_translations)
        reg.set_counter("tol.loops_unrolled", tol.translator.loops_unrolled)
        reg.set_counter("tol.speculated_pairs",
                        tol.translator.speculated_pairs)
        reg.set_counter("tol.rollbacks.assert", stats.assert_failures)
        reg.set_counter("tol.rollbacks.spec", stats.spec_failures)
        reg.set_counter("tol.demotions", stats.demotions)
        reg.set_counter("tol.chains_made", stats.chains_made)
        reg.set_counter("tol.ibtc_fills", stats.ibtc_fills)
        reg.set_counter("tol.sb_blacklisted", stats.sb_blacklisted)
        reg.set_counter("tol.watchdog_fires", stats.watchdog_fires)
        reg.set_counter("tol.im_guest_insns", stats.im_guest_insns)
        reg.set_counter("tol.background_translation_insns",
                        tol.background_translation_insns)
        for category in CATEGORIES:
            reg.set_counter(f"tol.overhead.{category}",
                            tol.overhead.counters[category])
        reg.set_counter("tol.overhead.total", tol.overhead.total)

        cache = tol.cache
        reg.set_counter("cache.hits", cache.hits)
        reg.set_counter("cache.misses", cache.misses)
        reg.set_counter("cache.insertions", cache.insertions)
        reg.set_counter("cache.invalidations", cache.invalidations)
        reg.set_counter("cache.evictions", cache.evictions)
        reg.set_counter("cache.flushes", cache.flushes)
        reg.set_counter("cache.oversize_rejections",
                        cache.oversize_rejections)
        reg.set_gauge("cache.units", len(cache))
        reg.set_gauge("cache.size_insns", cache.size_insns)

        host = tol.host
        reg.set_counter("host.insns.total", host.host_insns_total)
        reg.set_counter("host.insns.committed", host.host_insns_committed)
        reg.set_counter("host.insns.wasted", host.host_insns_wasted)
        reg.set_counter("host.guest_retired", host.guest_retired_total)
        reg.set_counter("host.ibtc.hits", host.ibtc.hits)
        reg.set_counter("host.ibtc.misses", host.ibtc.misses)
        reg.set_counter("host.fastpath.segments", host.fast_segments)
        reg.set_counter("host.fastpath.insns", host.fast_segment_insns)
        reg.set_counter("host.slowpath.insns",
                        host.host_insns_total - host.fast_segment_insns)
        reg.set_counter("host.direct.entries", host.direct_entries)
        reg.set_counter("host.direct.insns", host.direct_insns)
        reg.set_counter("tol.direct_promotions", stats.direct_promotions)
        reg.set_counter("host.alias_search_insns", host.alias_search_insns)
        for mode, retired in sorted(tol.mode_distribution().items()):
            reg.set_counter(f"mode.retired.{mode}", retired)

        reg.set_counter("resilience.incidents", len(tol.incidents))
        for kind in set(tol.incidents.kinds()):
            reg.set_counter(f"resilience.incidents.{kind}",
                            tol.incidents.count(kind))
        reg.set_counter("resilience.quarantined_pcs", len(tol.quarantine))
        for level, count in sorted(tol.quarantine.summary().items()):
            reg.set_counter(f"resilience.quarantine.{level}", count)
        injector = getattr(tol, "fault_injector", None)
        if injector is not None:
            reg.set_counter("resilience.faults_armed", 1)
            reg.set_counter("resilience.faults_fired",
                            1 if injector.fired else 0)

        # Coverage namespace: the fuzzer's map is built from these.
        for key, count in sorted(stats.exit_arms.items()):
            reg.set_counter(f"cov.exit.{key}", count)
        for key, count in sorted(stats.sb_shapes.items()):
            reg.set_counter(f"cov.shape.{key}", count)
        for key, count in sorted(stats.direct_tier.items()):
            reg.set_counter(f"cov.direct.{key}", count)
        for edge, count in sorted(tol.quarantine.edges.items()):
            reg.set_counter(f"cov.quarantine.{edge}", count)
        reg.set_counter("cov.direct.strips", cache.direct_strips)
        sanitizer = tol.sanitizer
        if sanitizer is not None:
            reg.set_counter("cov.sanitizer.checks", sanitizer.checks_run)
            reg.set_counter("cov.sanitizer.violations",
                            sanitizer.violations)

    telemetry.register_collector(collect)


def register_controller_collector(telemetry, controller) -> None:
    """Scrape the synchronization-protocol counters the controller
    owns (the TOL never sees them)."""

    def collect(reg):
        reg.set_counter("controller.syscalls", controller.syscall_events)
        reg.set_counter("controller.data_requests",
                        controller.codesigned.data_requests)
        reg.set_counter("controller.validations", controller.validations)
        reg.set_counter("controller.recoveries", controller.recoveries)
        store = controller._checkpoint_store
        if store is not None:
            reg.set_counter("controller.checkpoints_written",
                            len(store.written))

    telemetry.register_collector(collect)


def register_timing_collector(telemetry, core, session=None) -> None:
    """Scrape the in-order timing core: cycles, per-unit-class issue
    counts, branch/cache statistics and stall attribution.  With a
    ``TimingSession`` attached, also surface the cycle-annotation
    fastpath/fallback split (``timing.annotated.*``)."""

    def collect(reg):
        stats = core.stats
        reg.set_counter("timing.instructions", stats.instructions)
        reg.set_counter("timing.cycles", stats.cycles)
        reg.set_counter("timing.branches", stats.branches)
        reg.set_counter("timing.mispredicts", stats.mispredicts)
        reg.set_counter("timing.loads", stats.loads)
        reg.set_counter("timing.stores", stats.stores)
        for klass, count in sorted(stats.by_class.items()):
            reg.set_counter(f"timing.class.{klass}", count)
        for kind, cycles in sorted(core._stall.items()):
            reg.set_counter(f"timing.stall.{kind}", cycles)
        reg.set_gauge("timing.ipc", stats.ipc)
        mem = core.mem
        reg.set_gauge("timing.l1d_miss_rate", mem.l1d.miss_rate())
        reg.set_gauge("timing.l1i_miss_rate", mem.l1i.miss_rate())
        reg.set_gauge("timing.l2_miss_rate", mem.l2.miss_rate())
        reg.set_counter("timing.dtlb_misses", mem.dtlb.misses)
        if mem.prefetcher:
            reg.set_counter("timing.prefetches_issued",
                            mem.prefetcher.issued)
            reg.set_counter("timing.prefetch_hits", mem.l1d.prefetch_hits)
        if session is not None:
            reg.set_counter("timing.annotated.units",
                            session.annotated_units)
            reg.set_counter("timing.annotated.compiled_units",
                            session.compiled_units)
            reg.set_counter("timing.annotated.batches",
                            session.fastpath_batches)
            reg.set_counter("timing.annotated.fastpath",
                            session.fastpath_insns)
            reg.set_counter("timing.annotated.fallback",
                            session.fallback_insns)
            for reason, count in sorted(session.fallback_reasons.items()):
                reg.set_counter(f"timing.annotated.fallback.{reason}",
                                count)

    telemetry.register_collector(collect)
