"""Unified telemetry layer for the tri-component system.

One :class:`Telemetry` hub per TOL instance ties together:

- a **metrics registry** (:mod:`repro.telemetry.registry`) of named
  counters/gauges/histograms, filled by pull-style collectors at
  snapshot boundaries (so the ``counters`` mode costs <5% of KIPS —
  enforced by ``benchmarks/bench_fastpath.py --telemetry``);
- a **span tracer** (:mod:`repro.telemetry.tracer`), active only in
  ``full`` mode, covering dispatch, translate, optimize, validate,
  checkpoint and sweep-task phases, exportable to Chrome trace-event
  JSON (Perfetto) and JSONL.

Modes (``TolConfig.telemetry``):

``off``
    No snapshots, no tracing.  Components still keep their native
    counters (they always have); the registry is simply never scraped.
``counters``
    :meth:`Telemetry.snapshot` scrapes every registered collector into
    a deterministic :class:`TelemetrySnapshot`, returned on
    ``RunResult.telemetry``.
``full``
    ``counters`` plus the span tracer.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.telemetry.registry import (
    DEFAULT_BOUNDS, KIND_TELEMETRY_SNAPSHOT, TELEMETRY_SCHEMA_VERSION,
    Counter, Gauge, Histogram, MetricsRegistry, TelemetrySnapshot,
    merge_snapshots,
)
from repro.telemetry.tracer import DEFAULT_MAX_EVENTS, SpanTracer

MODE_OFF = "off"
MODE_COUNTERS = "counters"
MODE_FULL = "full"
MODES = (MODE_OFF, MODE_COUNTERS, MODE_FULL)

#: Shared no-op context manager for span() in non-tracing modes.
_NULL_CM = nullcontext()


class Telemetry:
    """The per-system telemetry hub (owned by the TOL, shared with the
    controller, timing session and harness)."""

    def __init__(self, mode: str = MODE_OFF,
                 max_trace_events: int = DEFAULT_MAX_EVENTS):
        if mode not in MODES:
            raise ValueError(
                f"unknown telemetry mode {mode!r}; valid: "
                f"{', '.join(MODES)}")
        self.mode = mode
        self.registry = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(max_events=max_trace_events)
            if mode == MODE_FULL else None)
        # Distributed tracing: while a worker-side trace context is
        # active (serve jobs traced end to end), adopt a span tracer
        # even in off/counters mode.  Tracer-only — the hub's mode and
        # snapshot behaviour are untouched, so traced and untraced runs
        # of one job stay bit-identical (one result universe).
        from repro.telemetry import tracectx
        tracectx.adopt(self)

    @property
    def counters_on(self) -> bool:
        """True when snapshots will be produced (``counters``/``full``)."""
        return self.mode != MODE_OFF

    def register_collector(self, fn):
        return self.registry.register_collector(fn)

    def span(self, name: str, cat: str, icount: Optional[int] = None,
             **args):
        """A tracer span in ``full`` mode; a shared no-op context
        manager otherwise (call sites stay unconditional)."""
        if self.tracer is None:
            return _NULL_CM
        return self.tracer.span(name, cat, icount=icount, **args)

    def instant(self, name: str, cat: str, icount: Optional[int] = None,
                **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, cat, icount=icount, **args)

    def snapshot(self, force: bool = False) -> Optional[TelemetrySnapshot]:
        """Scrape the collectors and freeze the registry; ``None`` in
        ``off`` mode unless ``force`` (debug dumps scrape regardless)."""
        if not self.counters_on and not force:
            return None
        return self.registry.snapshot()


def overhead_breakdown_from_snapshot(snapshot: TelemetrySnapshot):
    """Figure 7 overhead-category fractions recomputed from the metrics
    registry's ``tol.overhead.*`` instruments (the telemetry-side twin
    of :meth:`repro.tol.overhead.OverheadAccount.breakdown`; the test
    suite holds the two to equality)."""
    from repro.tol.overhead import CATEGORIES
    counters = snapshot.counters
    values = {c: counters.get(f"tol.overhead.{c}", 0) for c in CATEGORIES}
    total = sum(values.values())
    if total == 0:
        return {c: 0.0 for c in CATEGORIES}
    return {c: values[c] / total for c in CATEGORIES}


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "SpanTracer",
    "Telemetry", "TelemetrySnapshot", "merge_snapshots",
    "overhead_breakdown_from_snapshot",
    "DEFAULT_BOUNDS", "DEFAULT_MAX_EVENTS",
    "KIND_TELEMETRY_SNAPSHOT", "TELEMETRY_SCHEMA_VERSION",
    "MODES", "MODE_OFF", "MODE_COUNTERS", "MODE_FULL",
]
