"""Process-wide metrics registry: counters, gauges, histograms.

Design: **pull, not push**.  The simulator's hot loops (interpreter
steps, host dispatch, code-cache lookups) already maintain their own
plain-int counters — they always have, because the paper's figures are
read off them.  The registry therefore does *not* sit in the hot path;
instead each component registers a *collector* callback that scrapes
those native counters into named instruments at snapshot boundaries
(end of run, pause, sweep-task completion).  Push-style updates
(:meth:`Counter.inc`, :meth:`Histogram.observe`) are reserved for cold
paths — translations, validations, incidents, sweep-task bookkeeping —
where a dict lookup per event is noise.

This is what makes the ``counters`` telemetry mode nearly free: the
only work added over ``off`` is one scrape per snapshot, which the
overhead benchmark (``benchmarks/bench_fastpath.py --telemetry``) holds
under 5% of KIPS.

Determinism contract: every value held by the registry derives from
simulated quantities (instruction counts, event counts, sizes) — never
wall-clock time — so the same workload yields bit-identical snapshots
regardless of host speed or sweep parallelism.  Wall-clock data lives
in the tracer (:mod:`repro.telemetry.tracer`) and in harness-side
latency records, which are deliberately kept out of snapshots.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Versioned-artifact identity for exported snapshots (``ioutil``).
TELEMETRY_SCHEMA_VERSION = 1
KIND_TELEMETRY_SNAPSHOT = "telemetry_snapshot"

#: Default histogram bucket boundaries (upper-inclusive edges); values
#: above the last edge land in the overflow bucket.
DEFAULT_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class Counter:
    """A monotonically meaningful integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Collector path: adopt a component's native counter value."""
        self.value = int(value)


class Gauge:
    """A point-in-time float instrument (occupancy, rates, fractions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram: ``len(bounds) + 1`` buckets, the last
    one catching everything above the highest edge."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total}

    def percentiles(self, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
                    ) -> Dict[str, float]:
        """Promote the buckets to percentile estimates (``{"p50": ...}``).

        Linear interpolation inside the winning bucket; the overflow
        bucket clamps to the highest edge (its upper bound is open).
        Deterministic — pure arithmetic over the counts — and exact
        enough for latency summaries, which is what fixed-boundary
        histograms buy in exchange for O(1) observation.  Empty
        histograms report 0.0 everywhere.
        """
        return histogram_percentiles(self.as_dict(), qs)


def histogram_percentiles(hist: Dict[str, Any],
                          qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
                          ) -> Dict[str, float]:
    """Percentile estimates from a histogram's ``as_dict`` form (shared
    by live instruments, snapshots, and wire-serialized copies)."""
    bounds = list(hist.get("bounds", ()))
    counts = list(hist.get("counts", ()))
    total = int(hist.get("count", 0))
    out: Dict[str, float] = {}
    for q in qs:
        label = f"p{q:g}"
        if total <= 0 or not counts:
            out[label] = 0.0
            continue
        rank = q / 100.0 * total
        cumulative = 0
        value = float(bounds[-1]) if bounds else 0.0
        for i, n in enumerate(counts):
            if n <= 0:
                cumulative += n
                continue
            if cumulative + n >= rank:
                lo = bounds[i - 1] if i > 0 else 0.0
                hi = bounds[i] if i < len(bounds) else bounds[-1] \
                    if bounds else 0.0
                if hi <= lo:
                    value = float(hi)
                else:
                    frac = (rank - cumulative) / n
                    value = lo + (hi - lo) * min(1.0, max(0.0, frac))
                break
            cumulative += n
        out[label] = round(float(value), 6)
    return out


class MetricsRegistry:
    """Named instruments plus the collector callbacks that fill them.

    Instrument names are dotted paths (``tol.translations.bb``,
    ``cache.hits``); :meth:`counter`/:meth:`gauge`/:meth:`histogram`
    get-or-create, so components can share instruments without
    coordination.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_counter(self, name: str, value: int) -> None:
        self.counter(name).set(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # -- collectors ---------------------------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]):
        """Register a scrape callback run by :meth:`collect`; returns
        ``fn`` so it can be used as a decorator."""
        self._collectors.append(fn)
        return fn

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    def snapshot(self, collect: bool = True) -> "TelemetrySnapshot":
        """Freeze every instrument into a :class:`TelemetrySnapshot`
        (running the collectors first unless ``collect=False``)."""
        if collect:
            self.collect()
        return TelemetrySnapshot(
            counters={n: c.value for n, c in sorted(self._counters.items())},
            gauges={n: g.value for n, g in sorted(self._gauges.items())},
            histograms={n: h.as_dict()
                        for n, h in sorted(self._histograms.items())},
        )


@dataclass
class TelemetrySnapshot:
    """An immutable-by-convention dump of every instrument.

    Round-trips losslessly through the versioned artifact envelope
    (:meth:`save`/:meth:`load`) and merges/diffs instrument-wise for
    sweep aggregation and ``darco metrics --diff``.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {n: dict(h)
                               for n, h in self.histograms.items()}}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TelemetrySnapshot":
        return cls(counters=dict(d.get("counters", {})),
                   gauges=dict(d.get("gauges", {})),
                   histograms={n: dict(h)
                               for n, h in d.get("histograms", {}).items()})

    # -- algebra ------------------------------------------------------------

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Instrument-wise union: counters and histogram buckets sum,
        gauges keep the maximum (a merged snapshot answers "how much
        work happened across these runs", and peak is the only gauge
        reduction that stays order-independent)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = {n: dict(h) for n, h in self.histograms.items()}
        for name, h in other.histograms.items():
            mine = histograms.get(name)
            if mine is None or list(mine["bounds"]) != list(h["bounds"]):
                histograms[name] = dict(h)
                continue
            histograms[name] = {
                "bounds": list(mine["bounds"]),
                "counts": [a + b for a, b in zip(mine["counts"],
                                                 h["counts"])],
                "count": mine["count"] + h["count"],
                "total": mine["total"] + h["total"],
            }
        return TelemetrySnapshot(counters=counters, gauges=gauges,
                                 histograms=histograms)

    def diff(self, other: "TelemetrySnapshot") -> Dict[str, Any]:
        """Per-instrument deltas ``other - self`` (counters and
        histogram observation counts subtract; gauges report both
        sides).  Instruments present on only one side still appear."""
        names = sorted(set(self.counters) | set(other.counters))
        counters = {n: other.counters.get(n, 0) - self.counters.get(n, 0)
                    for n in names}
        gauges = {n: (self.gauges.get(n), other.gauges.get(n))
                  for n in sorted(set(self.gauges) | set(other.gauges))
                  if self.gauges.get(n) != other.gauges.get(n)}
        histograms = {}
        for n in sorted(set(self.histograms) | set(other.histograms)):
            a = self.histograms.get(n, {}).get("count", 0)
            b = other.histograms.get(n, {}).get("count", 0)
            histograms[n] = b - a
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # -- persistence --------------------------------------------------------

    def save(self, path) -> str:
        """Export as a versioned artifact; returns the content hash."""
        from repro.ioutil import write_artifact
        return write_artifact(path, KIND_TELEMETRY_SNAPSHOT,
                              TELEMETRY_SCHEMA_VERSION, self.as_dict())

    @classmethod
    def load(cls, path) -> "TelemetrySnapshot":
        """Load a saved snapshot; raises
        :class:`repro.ioutil.SchemaError` on corruption/mismatch."""
        from repro.ioutil import load_artifact
        payload = load_artifact(path, KIND_TELEMETRY_SNAPSHOT,
                                TELEMETRY_SCHEMA_VERSION)
        return cls.from_dict(payload)


def merge_snapshots(snapshots) -> Optional[TelemetrySnapshot]:
    """Fold an iterable of snapshots (or ``as_dict`` mappings) into one;
    returns ``None`` for an empty input."""
    merged: Optional[TelemetrySnapshot] = None
    for snap in snapshots:
        if snap is None:
            continue
        if isinstance(snap, dict):
            snap = TelemetrySnapshot.from_dict(snap)
        merged = snap if merged is None else merged.merge(snap)
    return merged
