"""Span-based structured tracer.

Records begin/end (and instant/complete) events with monotonic
``perf_counter_ns`` timestamps and guest-icount anchors, bounded by a
hard event cap so a runaway run cannot exhaust memory.  Two exporters:

- **Chrome trace-event JSON** (:meth:`SpanTracer.to_chrome_trace`):
  the ``{"traceEvents": [...]}`` dict format, viewable in Perfetto or
  ``chrome://tracing``.  Each category gets its own track (thread id)
  plus a thread-name metadata event, so dispatch / translate / validate
  phases render as parallel lanes.
- **JSONL** (:meth:`SpanTracer.write_jsonl`): one event per line, for
  ad-hoc offline analysis (``jq``, pandas).

Timestamps are wall-clock by nature and therefore never flow into the
metrics registry (whose snapshots must stay deterministic); the
guest-icount anchor carried in each event's ``args`` is the
deterministic ruler to line traces up against.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

#: Default hard cap on buffered events (~40 MB of dicts at worst).
DEFAULT_MAX_EVENTS = 200_000


class SpanTracer:
    """Bounded in-memory trace-event buffer."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS,
                 pid: Optional[int] = None):
        self.max_events = max_events
        self.pid = pid if pid is not None else os.getpid()
        self.events: List[Dict[str, Any]] = []
        #: Events refused because the buffer was full.
        self.dropped = 0
        #: Open spans whose begin was dropped: their ends are swallowed
        #: too, keeping B/E balance intact under the cap.
        self._suppressed = 0
        self._tids: Dict[str, int] = {}
        self._t0 = time.perf_counter_ns()
        #: Epoch microseconds at ``_t0`` — the offset that maps this
        #: tracer's process-relative timestamps onto the cross-process
        #: wall-clock ruler (span-file merge, ``darco trace --job``).
        self.epoch_origin_us = time.time_ns() // 1000

    # -- internals ----------------------------------------------------------

    def _ts(self) -> float:
        """Microseconds since tracer creation (Chrome's time unit)."""
        return (time.perf_counter_ns() - self._t0) / 1000.0

    def _tid(self, cat: str) -> int:
        tid = self._tids.get(cat)
        if tid is None:
            tid = self._tids[cat] = len(self._tids)
        return tid

    def _full(self) -> bool:
        return len(self.events) >= self.max_events

    # -- event emission -----------------------------------------------------

    def begin(self, name: str, cat: str, icount: Optional[int] = None,
              **args) -> None:
        if self._full():
            self.dropped += 1
            self._suppressed += 1
            return
        if icount is not None:
            args["icount"] = icount
        self.events.append({"name": name, "cat": cat, "ph": "B",
                            "ts": self._ts(), "pid": self.pid,
                            "tid": self._tid(cat), "args": args})

    def end(self, name: str, cat: str, icount: Optional[int] = None,
            **args) -> None:
        if self._suppressed > 0:
            self._suppressed -= 1
            return
        if icount is not None:
            args["icount"] = icount
        # Ends are appended even at the cap: an unbalanced B would render
        # as a span swallowing the rest of the trace.
        self.events.append({"name": name, "cat": cat, "ph": "E",
                            "ts": self._ts(), "pid": self.pid,
                            "tid": self._tid(cat), "args": args})

    def instant(self, name: str, cat: str, icount: Optional[int] = None,
                **args) -> None:
        if self._full():
            self.dropped += 1
            return
        if icount is not None:
            args["icount"] = icount
        self.events.append({"name": name, "cat": cat, "ph": "i",
                            "ts": self._ts(), "pid": self.pid,
                            "tid": self._tid(cat), "s": "t",
                            "args": args})

    def complete(self, name: str, cat: str, dur_us: float,
                 ts_us: Optional[float] = None, **args) -> None:
        """One self-contained ``X`` event (used for externally-timed
        work, e.g. sweep tasks whose duration is already known)."""
        if self._full():
            self.dropped += 1
            return
        ts = ts_us if ts_us is not None else self._ts() - dur_us
        self.events.append({"name": name, "cat": cat, "ph": "X",
                            "ts": max(0.0, ts), "dur": max(0.0, dur_us),
                            "pid": self.pid, "tid": self._tid(cat),
                            "args": args})

    @contextmanager
    def span(self, name: str, cat: str, icount: Optional[int] = None,
             **args):
        self.begin(name, cat, icount=icount, **args)
        try:
            yield self
        finally:
            self.end(name, cat)

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event dict (Perfetto-loadable)."""
        meta = [{"name": "process_name", "ph": "M", "pid": self.pid,
                 "tid": 0, "args": {"name": "darco"}}]
        for cat, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            meta.append({"name": "thread_name", "ph": "M", "pid": self.pid,
                         "tid": tid, "args": {"name": cat}})
        return {"traceEvents": meta + self.events,
                "displayTimeUnit": "ms",
                "otherData": {"dropped_events": self.dropped}}

    def write_chrome(self, path) -> None:
        """Atomically write the Chrome trace JSON (plain JSON, not the
        artifact envelope: Perfetto must open the file as-is)."""
        from repro.ioutil import atomic_write_bytes
        blob = json.dumps(self.to_chrome_trace(), indent=None,
                          separators=(",", ":")).encode()
        atomic_write_bytes(path, blob)

    def write_jsonl(self, path) -> None:
        """Atomically write one JSON event per line."""
        from repro.ioutil import atomic_write_bytes
        lines = [json.dumps(ev, separators=(",", ":"))
                 for ev in self.events]
        atomic_write_bytes(path, ("\n".join(lines) + "\n").encode())
