"""Windowed time-series metrics scraped from a registry.

One-shot :class:`~repro.telemetry.registry.TelemetrySnapshot` freezes
answer "what happened overall"; a live service needs "what is happening
*now* and over the last few minutes".  :class:`TimeSeriesScraper`
bridges the two: at a fixed interval it samples a
:class:`~repro.telemetry.registry.MetricsRegistry` into a bounded ring
of samples, each carrying

- **counter rates** (delta / elapsed, per second) for every counter,
- **gauge values** as-is,
- **histogram percentile summaries** (p50/p95/p99) promoted from the
  fixed-boundary buckets,

so dashboards (``darco top``) render jobs/s and latency percentiles
from one poll, and the whole window exports as a versioned artifact /
JSONL stream for offline analysis.

The ring is bounded (``capacity`` samples) — a service up for a month
holds the same memory as one up for an hour.  Sampling reads live
instruments without collectors (collector scrapes belong to snapshot
boundaries; a wall-clock sampler must not perturb deterministic
snapshot state).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry, histogram_percentiles

KIND_TIMESERIES = "timeseries"
TIMESERIES_SCHEMA_VERSION = 1

#: Default ring capacity (samples kept).
DEFAULT_CAPACITY = 512

#: Percentiles promoted from histograms.
DEFAULT_QS: Tuple[float, ...] = (50.0, 95.0, 99.0)


class TimeSeriesScraper:
    """Bounded ring of registry samples taken at a fixed interval."""

    def __init__(self, registry: MetricsRegistry,
                 interval_s: float = 1.0,
                 capacity: int = DEFAULT_CAPACITY,
                 qs: Tuple[float, ...] = DEFAULT_QS):
        self.registry = registry
        self.interval_s = max(1e-3, float(interval_s))
        self.capacity = max(2, int(capacity))
        self.qs = tuple(qs)
        self.samples: deque = deque(maxlen=self.capacity)
        self._last_counters: Dict[str, int] = {}
        self._last_t: Optional[float] = None
        self.samples_taken = 0

    # -- sampling -----------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Take one sample; returns it (and appends it to the ring)."""
        t = time.time() if now is None else float(now)
        snap = self.registry.snapshot(collect=False)
        elapsed = (t - self._last_t) if self._last_t is not None else None
        rates: Dict[str, float] = {}
        for name, value in snap.counters.items():
            if elapsed is not None and elapsed > 0:
                delta = value - self._last_counters.get(name, 0)
                rates[name] = round(delta / elapsed, 6)
        percentiles = {
            name: histogram_percentiles(hist, self.qs)
            for name, hist in snap.histograms.items()}
        sample = {
            "t": round(t, 6),
            "elapsed_s": round(elapsed, 6) if elapsed is not None else None,
            "counters": dict(snap.counters),
            "rates": rates,
            "gauges": dict(snap.gauges),
            "percentiles": percentiles,
        }
        self.samples.append(sample)
        self._last_counters = dict(snap.counters)
        self._last_t = t
        self.samples_taken += 1
        return sample

    # -- queries ------------------------------------------------------------

    def window(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` samples (all of them by default)."""
        items = list(self.samples)
        if n is not None:
            items = items[-max(0, int(n)):]
        return items

    def series(self, name: str, field: str = "gauges",
               n: Optional[int] = None) -> List[Tuple[float, float]]:
        """One named metric as ``[(t, value), ...]`` over the window.
        ``field`` picks the sample section (``gauges`` / ``rates`` /
        ``counters``)."""
        points = []
        for sample in self.window(n):
            value = sample.get(field, {}).get(name)
            if value is not None:
                points.append((sample["t"], value))
        return points

    def wire_dict(self, n: Optional[int] = None) -> Dict[str, Any]:
        """JSON-able projection for the serve ``timeseries`` op."""
        return {
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "samples": self.window(n),
        }

    # -- export -------------------------------------------------------------

    def export_artifact(self, path) -> None:
        """Versioned single-file export via the shared artifact
        envelope (atomic write, schema-checked load)."""
        from repro.ioutil import write_artifact
        write_artifact(path, KIND_TIMESERIES, TIMESERIES_SCHEMA_VERSION,
                       self.wire_dict())

    def export_jsonl(self, path) -> None:
        """Versioned JSONL export: a header line naming kind/schema,
        then one sample per line (jq/pandas-friendly).  Written
        atomically through the shared IO layer."""
        from repro.ioutil import atomic_write_bytes
        header = {"kind": KIND_TIMESERIES,
                  "schema_version": TIMESERIES_SCHEMA_VERSION,
                  "interval_s": self.interval_s,
                  "samples_taken": self.samples_taken}
        lines = [json.dumps(header, sort_keys=True,
                            separators=(",", ":"))]
        lines += [json.dumps(sample, sort_keys=True,
                             separators=(",", ":"))
                  for sample in self.samples]
        atomic_write_bytes(path, ("\n".join(lines) + "\n").encode())


def load_timeseries_jsonl(path) -> Dict[str, Any]:
    """Load an :meth:`~TimeSeriesScraper.export_jsonl` file; raises
    :class:`~repro.ioutil.SchemaError` on a bad header."""
    from repro.ioutil import SchemaError
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as exc:
        raise SchemaError(f"unreadable timeseries file: {exc}") from None
    if not lines:
        raise SchemaError("empty timeseries file")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise SchemaError(f"bad timeseries header: {exc}") from None
    if (not isinstance(header, dict)
            or header.get("kind") != KIND_TIMESERIES):
        raise SchemaError("not a timeseries artifact")
    if header.get("schema_version") != TIMESERIES_SCHEMA_VERSION:
        raise SchemaError(
            f"timeseries schema {header.get('schema_version')!r} "
            f"!= expected {TIMESERIES_SCHEMA_VERSION}")
    samples = []
    for line in lines[1:]:
        try:
            samples.append(json.loads(line))
        except ValueError:
            continue  # torn tail from a killed writer: not fatal
    return {"header": header, "samples": samples}


def sparkline(values: List[float], width: int = 32) -> str:
    """Render values as a unicode sparkline (dashboard helper; pure)."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return blocks[0] * len(tail)
    span = hi - lo
    return "".join(
        blocks[min(len(blocks) - 1,
                   int((v - lo) / span * (len(blocks) - 1) + 0.5))]
        for v in tail)
