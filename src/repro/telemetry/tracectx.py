"""Distributed trace context for the serve platform.

The serve pipeline spans four processes — ``darco submit`` (client),
the asyncio service, a forked shard worker, and the simulation run
inside it — and a slow or flaky job is invisible end to end unless one
identity follows it across every boundary.  This module is that
identity plus the plumbing around it:

- :class:`TraceContext`: an immutable ``trace_id``/``span_id`` pair
  (plus the job id and tracing mode) minted at ``darco submit``,
  carried in the wire protocol's ``trace`` field, forwarded over the
  shard pipe, and finally activated inside the worker process;
- :class:`SpanFileWriter`: an append-only per-process span file
  (JSON lines of Chrome trace events stamped with **epoch**
  microseconds, so events from different processes sort onto one
  timeline without clock negotiation).  Files are named
  ``<role>-<pid>.jsonl`` under one trace directory; the merge step
  (:mod:`repro.telemetry.tracemerge`) assembles a job's full causal
  lifecycle from them;
- worker-side activation (:func:`activate` / :func:`deactivate` /
  :func:`adopt`): while a context is active, every
  :class:`~repro.telemetry.Telemetry` hub constructed in the process
  gets a span tracer — even when the job's own config asked for
  ``off``/``counters`` — and the tracer is collected at job end so its
  dispatch/translate/validate spans land in the worker's span file.

The tracer upgrade is deliberately *tracer-only*: the hub's ``mode``
(and therefore its snapshot behaviour, and therefore every simulated
quantity and cached payload) is untouched, so a traced job's value
stays bit-identical with an untraced one — tracing must never split
the content-addressed result universe.

Span ids are per-writer sequence numbers, not random: two identical
runs produce identical span structure, which is what lets the test
suite diff merged timelines across runs (modulo the wall-clock ``ts``
/``dur`` fields).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Default directory for per-process span files (next to the serve
#: socket and result cache; override via ``ServeConfig.trace_dir``).
DEFAULT_TRACE_DIR = ".darco-serve-traces"

#: Schema version written into every span-file header line.
SPAN_FILE_VERSION = 1

#: Upper bound on client-supplied id strings (wire validation).
MAX_ID_CHARS = 64

#: Tracing modes a context can request (mirrors Telemetry's ladder:
#: ``counters`` = lifecycle spans only, ``full`` = simulator-internal
#: spans too).
TRACE_MODES = ("off", "counters", "full")


def mint_trace_id(seed: Optional[str] = None) -> str:
    """A 16-hex-char trace id: random by default, deterministic when a
    seed (e.g. the job's content-addressed key) is given."""
    if seed is not None:
        import hashlib
        return hashlib.sha256(seed.encode()).hexdigest()[:16]
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The identity a job carries across process boundaries."""

    trace_id: str
    #: Span id of the context's minting site (the client submit span).
    parent_span_id: str = ""
    #: Job id (short key) the context belongs to, once known.
    job: str = ""
    #: Effective tracing mode for this job (``off`` never propagates).
    mode: str = "counters"

    def as_wire(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "job": self.job, "mode": self.mode}

    @staticmethod
    def from_wire(obj: Any) -> Optional["TraceContext"]:
        """Validate an untrusted wire object; ``None`` when absent.

        Raises ``ValueError`` on garbage — the service turns that into
        the submitter's 400, never a worker exception later.
        """
        if obj is None:
            return None
        if not isinstance(obj, dict):
            raise ValueError("trace must be a JSON object")
        trace_id = obj.get("trace_id", "")
        parent = obj.get("parent_span_id", "")
        job = obj.get("job", "")
        mode = obj.get("mode", "counters")
        for name, value in (("trace_id", trace_id),
                            ("parent_span_id", parent), ("job", job)):
            if not isinstance(value, str) or len(value) > MAX_ID_CHARS:
                raise ValueError(
                    f"trace.{name} must be a string of at most "
                    f"{MAX_ID_CHARS} chars")
        if mode not in TRACE_MODES:
            raise ValueError(
                f"trace.mode must be one of {', '.join(TRACE_MODES)}")
        if not trace_id:
            raise ValueError("trace.trace_id must be non-empty")
        return TraceContext(trace_id=trace_id, parent_span_id=parent,
                            job=job, mode=mode)

    def with_job(self, job: str) -> "TraceContext":
        return TraceContext(trace_id=self.trace_id,
                            parent_span_id=self.parent_span_id,
                            job=job, mode=self.mode)


def epoch_us() -> int:
    """Wall-clock epoch microseconds (the cross-process trace ruler)."""
    return time.time_ns() // 1000


class SpanFileWriter:
    """Append-only per-process span file: one Chrome trace event per
    line, timestamps in epoch microseconds.

    Appends are line-atomic enough for the merge step (a torn final
    line from a killed process is skipped, not fatal), and a header
    line written at file creation names the role/pid so the merge can
    label process tracks.  Span ids are sequential per writer, keeping
    two identical runs structurally identical.
    """

    def __init__(self, trace_dir, role: str, pid: Optional[int] = None):
        self.trace_dir = Path(trace_dir)
        self.role = role
        self.pid = pid if pid is not None else os.getpid()
        self.path = self.trace_dir / f"{self.role}-{self.pid}.jsonl"
        self._seq = 0
        self._wrote_header = self.path.exists()
        self.written = 0

    # -- internals ----------------------------------------------------------

    def next_span_id(self) -> str:
        self._seq += 1
        return f"{self.role}:{self.pid}:{self._seq}"

    def _append(self, lines: List[str]) -> None:
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        if not self._wrote_header:
            header = {"ph": "M", "kind": "span_file_header",
                      "v": SPAN_FILE_VERSION, "role": self.role,
                      "pid": self.pid}
            lines = [json.dumps(header, separators=(",", ":"))] + lines
            self._wrote_header = True
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        self.written += len(lines)

    def _args(self, ctx: Optional[TraceContext],
              args: Dict[str, Any]) -> Dict[str, Any]:
        if ctx is not None:
            args = {"trace_id": ctx.trace_id, "job": ctx.job, **args}
        return args

    # -- event emission -----------------------------------------------------

    def complete(self, name: str, cat: str, start_us: int, end_us: int,
                 ctx: Optional[TraceContext] = None, **args) -> str:
        """One self-contained ``X`` span with known start/end."""
        span_id = self.next_span_id()
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": int(start_us),
                 "dur": max(0, int(end_us) - int(start_us)),
                 "pid": self.pid, "tid": 0,
                 "args": {**self._args(ctx, args), "span_id": span_id}}
        self._append([json.dumps(event, separators=(",", ":"))])
        return span_id

    def instant(self, name: str, cat: str,
                ctx: Optional[TraceContext] = None,
                ts_us: Optional[int] = None, **args) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": int(ts_us if ts_us is not None else epoch_us()),
                 "pid": self.pid, "tid": 0,
                 "args": self._args(ctx, args)}
        self._append([json.dumps(event, separators=(",", ":"))])

    def tracer_events(self, tracer, ctx: Optional[TraceContext] = None
                      ) -> int:
        """Flush a :class:`SpanTracer`'s buffered events, shifted from
        its process-relative clock onto the epoch ruler and stamped
        with the context.  Returns the number of events written."""
        origin = getattr(tracer, "epoch_origin_us", None)
        if origin is None:
            origin = epoch_us()
        lines = []
        for event in tracer.events:
            shifted = dict(event)
            shifted["ts"] = int(origin + event.get("ts", 0.0))
            shifted["pid"] = self.pid
            # Simulator-internal lanes start above the lifecycle lane.
            shifted["tid"] = int(event.get("tid", 0)) + 1
            shifted["args"] = self._args(ctx, dict(event.get("args", {})))
            lines.append(json.dumps(shifted, separators=(",", ":")))
        if lines:
            self._append(lines)
        return len(lines)


# ---------------------------------------------------------------------------
# Worker-side activation.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[TraceContext] = None
_COLLECTED: List[Any] = []


def activate(ctx: TraceContext) -> None:
    """Install ``ctx`` as the process's active trace context.  While
    active, every Telemetry hub constructed adopts a span tracer (see
    :func:`adopt`)."""
    global _ACTIVE
    _ACTIVE = ctx
    _COLLECTED.clear()


def deactivate() -> List[Any]:
    """Clear the active context; returns the tracers adopted while it
    was active (for the caller to flush into its span file)."""
    global _ACTIVE
    _ACTIVE = None
    collected, _COLLECTED[:] = list(_COLLECTED), []
    return collected


def active_context() -> Optional[TraceContext]:
    return _ACTIVE


def adopt(telemetry) -> None:
    """Called by ``Telemetry.__init__``: while a context is active in
    ``full`` mode, give the hub a span tracer (tracer-only upgrade —
    the hub's mode, snapshots and therefore every simulated quantity
    are untouched) and remember it for collection at job end."""
    ctx = _ACTIVE
    if ctx is None or ctx.mode != "full":
        return
    if telemetry.tracer is None:
        from repro.telemetry.tracer import SpanTracer
        telemetry.tracer = SpanTracer()
    _COLLECTED.append(telemetry.tracer)
