#!/usr/bin/env python
"""Kill-and-resume smoke test for crash-resumable sweeps (CI job).

Scenario: a ``darco sweep --arch`` run is SIGKILLed mid-task, then the
same command is rerun with ``--resume``.  The test asserts the resumed
sweep

1. replays already-completed tasks from the cache (no recompute),
2. continues the interrupted task from its last checkpoint (resume.log
   sidecar evidence), and
3. produces a ``--out`` result artifact byte-identical to an
   uninterrupted run's.

Exit status 0 on success; any assertion failure exits non-zero with a
diagnostic.  Run from the repository root::

    PYTHONPATH=src python tools/resume_smoke.py
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

WORKROOT = Path(".resume_smoke")
SCALE = "2.5"
WORKLOADS = ["--workload", "ticker", "--workload", "blend"]


def sweep_cmd(cache_dir, ckpt_dir, out, resume=False):
    cmd = [sys.executable, "-m", "repro.cli", "sweep", "--arch",
           "--jobs", "1", "--scale", SCALE, *WORKLOADS,
           "--cache-dir", str(cache_dir),
           "--checkpoint-dir", str(ckpt_dir),
           "--out", str(out)]
    if resume:
        cmd.append("--resume")
    return cmd


def fail(message):
    print(f"resume_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def cache_entries(cache_dir):
    return sorted(Path(cache_dir).rglob("*.pkl"))


def checkpoint_dirs(ckpt_dir):
    root = Path(ckpt_dir)
    if not root.is_dir():
        return []
    return [d for d in root.iterdir()
            if d.is_dir() and list(d.glob("ckpt-*.json"))]


def main():
    shutil.rmtree(WORKROOT, ignore_errors=True)
    WORKROOT.mkdir(parents=True)
    cache = WORKROOT / "cache"
    ckpt = WORKROOT / "ckpt"
    out = WORKROOT / "run.json"

    # Phase 1: start the sweep and SIGKILL it mid-task — after the
    # first task completed (>= 1 cache entry) and the second is
    # underway (>= 2 job dirs hold checkpoints).
    proc = subprocess.Popen(sweep_cmd(cache, ckpt, out),
                            start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 300
    killed = False
    while time.time() < deadline:
        if proc.poll() is not None:
            break  # finished before we could kill it; still a valid run
        if len(cache_entries(cache)) >= 1 and \
                len(checkpoint_dirs(ckpt)) >= 2:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(0.05)
    else:
        os.killpg(proc.pid, signal.SIGKILL)
        fail("sweep made no observable progress within 300s")
    if not killed:
        print("resume_smoke: WARNING: sweep finished before the kill "
              "window; resume path exercises the cache only")

    done_before = {p: p.stat().st_mtime_ns for p in cache_entries(cache)}
    if killed and len(done_before) >= 2:
        fail("kill landed after every task completed; lower the poll "
             "threshold or raise the scale")

    # Phase 2: same command again with --resume, to completion.
    resumed = subprocess.run(sweep_cmd(cache, ckpt, out, resume=True),
                             capture_output=True, text=True)
    if resumed.returncode != 0:
        fail(f"resumed sweep failed:\n{resumed.stdout}\n{resumed.stderr}")
    if " 0 cache hits" in resumed.stdout:
        fail("resumed sweep had no cache hits: completed tasks were "
             f"rerun\n{resumed.stdout}")
    for path, mtime in done_before.items():
        if path.stat().st_mtime_ns != mtime:
            fail(f"completed task was recomputed (cache entry rewritten): "
                 f"{path}")
    if killed:
        logs = list(Path(ckpt).glob("*/resume.log"))
        if not logs:
            fail("no resume.log sidecar: interrupted task did not resume "
                 "from its checkpoint")
        evidence = "".join(log.read_text() for log in logs)
        if "resumed from ckpt-" not in evidence:
            fail(f"resume.log carries no checkpoint evidence:\n{evidence}")
        icounts = [int(tok.split("=", 1)[1])
                   for tok in evidence.split()
                   if tok.startswith("guest_icount=")]
        if not any(n > 0 for n in icounts):
            fail(f"resume happened at guest_icount=0 (no progress was "
                 f"actually reused):\n{evidence}")

    # Phase 3: a fresh, uninterrupted run in clean directories must
    # produce a byte-identical result artifact.
    fresh_out = WORKROOT / "fresh.json"
    fresh = subprocess.run(
        sweep_cmd(WORKROOT / "cache2", WORKROOT / "ckpt2", fresh_out),
        capture_output=True, text=True)
    if fresh.returncode != 0:
        fail(f"fresh sweep failed:\n{fresh.stdout}\n{fresh.stderr}")
    if out.read_bytes() != fresh_out.read_bytes():
        a = json.loads(out.read_text())
        b = json.loads(fresh_out.read_text())
        fail("resumed result artifact differs from uninterrupted run's:\n"
             f"resumed sha={a.get('sha256')}\nfresh   sha={b.get('sha256')}")

    print(f"resume_smoke: PASS (killed mid-task: {killed}; "
          f"resumed artifact byte-identical to fresh run)")
    shutil.rmtree(WORKROOT, ignore_errors=True)


if __name__ == "__main__":
    main()
