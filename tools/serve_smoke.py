#!/usr/bin/env python
"""End-to-end smoke test for ``darco serve`` (CI job).

Everything goes through the real CLI as subprocesses — the same path a
user types — against a service with supervised workers:

1. ``darco serve`` comes up and its unix socket accepts clients.
2. ``darco submit --wait`` runs a job to completion and returns its
   result JSON.
3. Resubmitting the identical job is answered from the shared result
   cache (code 200) without consuming a worker.
4. Chaos: a checkpointable ``arch_run`` job is submitted, the busy
   worker is SIGKILLed mid-run, and ``darco fetch --wait`` must still
   return a completed result that is **bit-identical** to a clean
   in-process run — the supervisor restarted the worker and the job
   resumed from its checkpoint.
5. ``darco status`` healthz reflects the restart, and SIGINT shuts the
   service down cleanly (socket removed).

Exit status 0 on success; any assertion failure exits non-zero with a
diagnostic.  Run from the repository root::

    PYTHONPATH=src python tools/serve_smoke.py
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

WORKROOT = Path(".serve_smoke")
SOCK = WORKROOT / "serve.sock"
CHAOS_PARAMS = {"workload": "429.mcf", "scale": 0.3}


def cli(*args, check=True, timeout=300):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout)
    if check and proc.returncode != 0:
        fail(f"darco {' '.join(args)} exited {proc.returncode}\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc


def serve_cli(*args):
    return cli(*args, "--socket", str(SOCK))


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(deadline_s=30):
    end = time.time() + deadline_s
    while time.time() < end:
        if SOCK.exists():
            probe = socket.socket(socket.AF_UNIX)
            try:
                probe.connect(str(SOCK))
                return
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.1)
    fail("serve socket never came up")


def json_tail(text):
    """Parse the JSON object that ends ``text`` (after any log lines)."""
    start = text.index("{")
    return json.loads(text[start:])


def healthz():
    return json.loads(serve_cli("status", "--json").stdout)


def main():
    shutil.rmtree(WORKROOT, ignore_errors=True)
    WORKROOT.mkdir()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", str(SOCK), "--workers", "2", "--max-attempts", "6",
         "--cache-dir", str(WORKROOT / "cache"),
         "--checkpoint-dir", str(WORKROOT / "ckpt")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        wait_for_socket()
        print("== serve up, socket accepting")

        # 2. A job runs to completion through submit --wait.
        done = serve_cli("submit", "workload_metrics",
                         "--param", "workload=429.mcf",
                         "--param", "scale=0.05", "--wait")
        result = json_tail(done.stdout)
        if result.get("state") != "done" or "value" not in result:
            fail(f"submit --wait did not complete the job: {result}")
        print("== submit --wait completed a job")

        # 3. The identical submission must ride the result cache.
        again = serve_cli("submit", "workload_metrics",
                          "--param", "workload=429.mcf",
                          "--param", "scale=0.05")
        if "code 200" not in again.stdout:
            fail(f"resubmit was not coalesced/cached: {again.stdout}")
        print("== identical resubmit answered from cache (code 200)")

        # 4. Chaos: SIGKILL the worker mid-job; the job must still
        # finish, bit-identical to a clean run.
        sub = serve_cli("submit", "arch_run",
                        "--params", json.dumps(CHAOS_PARAMS),
                        "--max-attempts", "6")
        job = sub.stdout.split()[1]
        victim = None
        for _ in range(300):
            busy = [w for w in healthz()["workers"]
                    if w["state"] == "busy" and w["pid"]]
            if busy:
                victim = busy[0]["pid"]
                break
            time.sleep(0.05)
        if victim is None:
            fail("no worker ever went busy on the chaos job")
        time.sleep(0.3)  # let it get past the first checkpoint
        os.kill(victim, signal.SIGKILL)
        print(f"== SIGKILLed busy worker pid={victim}")

        fetched = serve_cli("fetch", job, "--wait", "--timeout", "300")
        final = json_tail(fetched.stdout)
        if final.get("state") != "done":
            fail(f"chaos job did not complete: {final}")
        if final.get("attempts", 0) < 2:
            fail(f"chaos job finished in {final.get('attempts')} "
                 f"attempt(s) — the kill never landed mid-job")

        from repro.harness.parallel import _execute
        from repro.ioutil import canonical_json
        from repro.serve.service import wire_value
        clean = canonical_json(wire_value(
            _execute("arch_run", dict(CHAOS_PARAMS))))
        if canonical_json(final["value"]) != clean:
            fail("chaos result differs from a clean run "
                 "(determinism contract broken)")
        print(f"== chaos job completed in {final['attempts']} attempts, "
              f"bit-identical to clean run")

        # 5. The supervisor restarted the killed worker.
        counters = healthz()["counters"]
        if counters.get("serve.worker_restarts", 0) < 1:
            fail(f"no worker restart recorded: {counters}")
        human = serve_cli("status")
        if "live" not in human.stdout:
            fail(f"healthz summary missing liveness: {human.stdout}")
        print("== healthz shows the restart; human summary live")
    finally:
        server.send_signal(signal.SIGINT)
        try:
            out, _ = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            out, _ = server.communicate()
            fail("serve did not shut down on SIGINT")

    if server.returncode != 0:
        fail(f"serve exited {server.returncode}:\n{out}")
    if SOCK.exists():
        fail("serve left its socket behind after shutdown")
    shutil.rmtree(WORKROOT, ignore_errors=True)
    print("serve smoke: OK")


if __name__ == "__main__":
    main()
