#!/usr/bin/env python
"""Schema validator for exported Chrome trace-event JSON.

Checks the structural invariants Perfetto / chrome://tracing rely on,
so CI can assert that ``darco trace`` output stays loadable:

- the file is a JSON object with a ``traceEvents`` list;
- every event carries ``name``/``ph``/``pid``/``tid``, a known phase,
  and (except metadata events) a numeric non-negative ``ts``;
- duration events balance: every ``E`` closes a ``B`` on the same
  ``(pid, tid)`` lane, and no ``B`` is left open at the end;
- ``X`` (complete) events carry a non-negative ``dur``.

Usage::

    python tools/validate_trace.py trace.json [more.json ...]

Exit status 0 when every file validates, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

#: Phases ``darco trace`` emits (a subset of the full spec).
KNOWN_PHASES = {"B", "E", "X", "i", "C", "M"}


def validate(path) -> List[str]:
    """Validate one trace file; returns a list of error strings
    (empty when the file is schema-valid)."""
    errors: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    if not isinstance(trace, dict):
        return ["top level is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]

    open_spans: Dict[Any, List[str]] = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
        lane = (event.get("pid"), event.get("tid"))
        if ph == "B":
            open_spans.setdefault(lane, []).append(event.get("name"))
        elif ph == "E":
            stack = open_spans.get(lane)
            if not stack:
                errors.append(f"{where}: E without matching B on "
                              f"lane {lane}")
            else:
                stack.pop()
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X with bad dur {dur!r}")
    for lane, stack in open_spans.items():
        if stack:
            errors.append(f"lane {lane}: {len(stack)} unclosed B "
                          f"event(s): {stack[-3:]}")
    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 1
    status = 0
    for path in argv:
        errors = validate(path)
        if errors:
            status = 1
            print(f"{path}: INVALID")
            for error in errors[:20]:
                print(f"  {error}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            with open(path, "r", encoding="utf-8") as handle:
                count = len(json.load(handle)["traceEvents"])
            print(f"{path}: OK ({count} events)")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
