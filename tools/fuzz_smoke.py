#!/usr/bin/env python
"""End-to-end smoke test for the fuzz campaign pipeline (CI job).

Three pinned scenarios, asserted hard:

1. **Clean campaign** (seed 1, small budget): the coverage map must be
   non-empty and every finding fully triaged — minimized, confirmed —
   so a red campaign is always actionable (here: zero findings at all).
2. **Planted divergence** (seed 2, ``host_bitflip`` armed on exec 0):
   the known-bad mutant must be caught as a divergence finding,
   ddmin-minimized to <= 10 instructions, confirmed by replaying its
   emitted repro bundle, and the bundle must replay red through the
   real ``darco repro`` CLI.
3. **Planted sanitizer violation** (seed 2, ``stale_chain`` armed):
   same pipeline, sanitizer kind — and re-evaluating the same planted
   candidate twice must yield the *same* incident signature, the key
   campaign dedup relies on.

Exit status 0 on success; any assertion failure exits non-zero with a
diagnostic.  Run from the repository root::

    PYTHONPATH=src python tools/fuzz_smoke.py
"""

import os
import shutil
import sys
from pathlib import Path

from repro.cli import main as darco
from repro.fuzz import FuzzConfig, run_campaign

WORKROOT = Path(".fuzz_smoke")

#: Faults pinned to fire on the seed-2 exec-0 mutant (same pins as
#: tests/test_fuzz.py).
PLANT_DIVERGENCE = {"exec": 0, "site": "host_bitflip", "ordinal": 2,
                    "salt": 7}
PLANT_SANITIZER = {"exec": 0, "site": "stale_chain", "ordinal": 1,
                   "salt": 11}


def fail(message):
    print(f"fuzz_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(cond, message):
    if not cond:
        fail(message)


def step(title):
    print(f"fuzz_smoke: {title}", flush=True)


def clean_campaign():
    step("clean campaign (seed 1, budget 8)")
    result = run_campaign(FuzzConfig(seed=1, budget=8, batch=4, jobs=2))
    check(result.executions == 8, f"under-ran: {result.executions}/8")
    check(len(result.coverage) > 0, "coverage map is empty")
    check(result.coverage_digest, "no coverage digest")
    untriaged = [f.signature for f in result.findings
                 if f.confirmed is None]
    check(not untriaged, f"un-triaged findings: {untriaged}")
    check(not result.findings,
          f"clean campaign found: {result.signatures()}")
    print(f"  {len(result.coverage)} edges, "
          f"{result.classified} classified")


def planted_campaign(plant, kind, repro_dir):
    step(f"planted {kind} campaign (seed 2, {plant['site']})")
    result = run_campaign(FuzzConfig(
        seed=2, budget=1, batch=1, jobs=1, plant=plant,
        repro_dir=str(repro_dir)))
    check(len(result.findings) == 1,
          f"expected 1 finding, got {result.signatures()}")
    finding = result.findings[0]
    check(finding.kind == kind,
          f"expected kind {kind}, got {finding.kind}")
    check(finding.minimized_instructions is not None
          and finding.minimized_instructions <= 10,
          f"not minimized to <= 10 instructions: "
          f"{finding.minimized_instructions}")
    check(finding.original_instructions
          and finding.minimized_instructions
          < finding.original_instructions,
          "minimizer did not shrink the mutant")
    check(finding.confirmed is True, "finding did not confirm")
    check(finding.bundle_path and os.path.exists(finding.bundle_path),
          f"missing repro bundle: {finding.bundle_path}")
    rc = darco(["repro", finding.bundle_path])
    check(rc == 0, f"darco repro exited {rc} on the bundle")
    print(f"  caught {finding.kind}@{finding.leg}, minimized "
          f"{finding.original_instructions} -> "
          f"{finding.minimized_instructions} insns, confirmed, "
          f"bundle replays")
    return finding


def dedup_signature(plant):
    """The same planted candidate evaluated twice must produce one
    signature — the campaign's dedup key."""
    import random

    from repro.fuzz.engine import seed_corpus
    from repro.fuzz.oracle import evaluate_candidate

    step("dedup: identical candidate, identical signature")
    entry = seed_corpus(2)[0]
    rng = random.Random(f"2:{entry.entry_id}:0:0")
    mutant = entry.engine.mutate(rng)
    fault = {k: v for k, v in plant.items() if k != "exec"}
    sigs = {evaluate_candidate(mutant, fault=fault).signature
            for _ in range(2)}
    check(len(sigs) == 1, f"signature not stable: {sigs}")
    print(f"  signature stable: {next(iter(sigs))[:16]}…")


def main():
    shutil.rmtree(WORKROOT, ignore_errors=True)
    WORKROOT.mkdir(parents=True)
    try:
        clean_campaign()
        div = planted_campaign(PLANT_DIVERGENCE, "divergence",
                               WORKROOT / "div")
        san = planted_campaign(PLANT_SANITIZER, "sanitizer",
                               WORKROOT / "san")
        check(div.signature != san.signature,
              "distinct bug kinds share a signature")
        dedup_signature(PLANT_DIVERGENCE)
    finally:
        shutil.rmtree(WORKROOT, ignore_errors=True)
    print("fuzz_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
