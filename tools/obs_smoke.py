#!/usr/bin/env python
"""End-to-end smoke test for the serve observability layer (CI job).

Everything goes through the real CLI as subprocesses — the same path an
operator types — against a service running with full tracing:

1. ``darco serve --tracing full`` comes up; ``darco submit --trace
   full --wait`` completes a job and prints its trace id (client-side
   minting: the submit RPC is the timeline's first span).
2. Chaos: a traced checkpointable ``arch_run`` job is submitted, the
   busy worker is SIGKILLed mid-run, and the job resumes on a fresh
   worker.
3. ``darco trace --job <id>`` assembles ONE merged timeline per job
   from the per-process span files: client + service + worker tracks,
   every event stamped with the job's trace id, and — for the chaos
   job — the ``worker_death`` / ``retry_wait`` instants and the
   resumed attempt.  ``tools/validate_trace.py`` must accept both
   merged files (Perfetto-loadable schema).
4. ``darco top --once`` renders a dashboard frame (latency
   percentiles, worker table, hottest tiers) over the live socket, and
   ``darco status`` shows the queue-wait/run percentile lines.
5. A deadline-killed job fails with a flight recorder attached;
   ``darco fetch --postmortem`` exports it as a versioned artifact.

Exit status 0 on success.  Run from the repository root::

    PYTHONPATH=src python tools/obs_smoke.py
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

WORKROOT = Path(".obs_smoke")
SOCK = WORKROOT / "serve.sock"
TRACES = WORKROOT / "traces"
CHAOS_PARAMS = {"workload": "429.mcf", "scale": 0.3}


def cli(*args, check=True, timeout=300):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout)
    if check and proc.returncode != 0:
        fail(f"darco {' '.join(args)} exited {proc.returncode}\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc


def serve_cli(*args, **kw):
    return cli(*args, "--socket", str(SOCK), **kw)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(deadline_s=30):
    end = time.time() + deadline_s
    while time.time() < end:
        if SOCK.exists():
            probe = socket.socket(socket.AF_UNIX)
            try:
                probe.connect(str(SOCK))
                return
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.1)
    fail("serve socket never came up")


def json_tail(text):
    start = text.index("{")
    return json.loads(text[start:])


def healthz():
    return json.loads(serve_cli("status", "--json").stdout)


def merge_and_validate(job, out_name):
    """``darco trace --job`` + schema validation; returns the doc."""
    out = WORKROOT / out_name
    proc = cli("trace", "--job", job, "--trace-dir", str(TRACES),
               "--out", str(out))
    if "span files" not in proc.stdout:
        fail(f"trace merge said nothing useful: {proc.stdout}")
    check = subprocess.run(
        [sys.executable, "tools/validate_trace.py", str(out)],
        capture_output=True, text=True)
    if check.returncode != 0:
        fail(f"validate_trace rejected {out}:\n"
             f"{check.stdout}{check.stderr}")
    return json.loads(out.read_text())


def events_of(doc):
    return [ev for ev in doc["traceEvents"] if ev.get("ph") != "M"]


def main():
    shutil.rmtree(WORKROOT, ignore_errors=True)
    WORKROOT.mkdir()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", str(SOCK), "--workers", "2", "--max-attempts", "6",
         "--cache-dir", str(WORKROOT / "cache"),
         "--checkpoint-dir", str(WORKROOT / "ckpt"),
         "--tracing", "full", "--trace-dir", str(TRACES),
         "--metrics-interval", "0.2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        wait_for_socket()
        print("== serve up (tracing full)")

        # 1. A traced job end to end; the client mints the trace id.
        done = serve_cli("submit", "workload_metrics",
                         "--param", "workload=429.mcf",
                         "--param", "scale=0.05",
                         "--trace", "full", "--trace-dir", str(TRACES),
                         "--wait")
        first_line = done.stdout.splitlines()[0]
        if " trace " not in first_line:
            fail(f"submit printed no trace id: {first_line}")
        clean_job = first_line.split()[1]
        trace_id = first_line.split(" trace ")[1].strip()
        if json_tail(done.stdout).get("state") != "done":
            fail("traced job did not complete")
        print(f"== traced job {clean_job} done (trace {trace_id})")

        # 2. Chaos: SIGKILL the worker under a traced arch_run.
        sub = serve_cli("submit", "arch_run",
                        "--params", json.dumps(CHAOS_PARAMS),
                        "--max-attempts", "6")
        chaos_job = sub.stdout.split()[1]
        victim = None
        for _ in range(300):
            busy = [w for w in healthz()["workers"]
                    if w["state"] == "busy" and w["pid"]]
            if busy:
                victim = busy[0]["pid"]
                break
            time.sleep(0.05)
        if victim is None:
            fail("no worker ever went busy on the chaos job")
        time.sleep(0.3)  # let it get past the first checkpoint
        os.kill(victim, signal.SIGKILL)
        final = json_tail(serve_cli("fetch", chaos_job, "--wait",
                                    "--timeout", "300").stdout)
        if final.get("state") != "done" or final.get("attempts", 0) < 2:
            fail(f"chaos job did not resume to completion: {final}")
        print(f"== chaos job {chaos_job} resumed "
              f"({final['attempts']} attempts)")

        # 3. One merged Perfetto timeline per job.
        doc = merge_and_validate(clean_job, "trace_clean.json")
        events = events_of(doc)
        if doc["otherData"]["trace_ids"] != [trace_id]:
            fail(f"clean timeline trace ids: "
                 f"{doc['otherData']['trace_ids']}")
        if any(ev["args"].get("trace_id") != trace_id for ev in events):
            fail("an event lost its trace id")
        roles = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M"
                 and ev["name"] == "process_name"}
        if not {"client", "service", "worker"} <= roles:
            fail(f"timeline missing a process track: {roles}")
        names = {ev["name"] for ev in events}
        if not {"submit", "queue_wait", "run", "attempt"} <= names:
            fail(f"timeline missing lifecycle spans: {sorted(names)}")
        print(f"== clean timeline valid ({len(events)} events, "
              f"client+service+worker tracks)")

        chaos_doc = merge_and_validate(chaos_job, "trace_chaos.json")
        chaos_events = events_of(chaos_doc)
        chaos_names = [ev["name"] for ev in chaos_events]
        ids = {ev["args"].get("trace_id") for ev in chaos_events}
        if len(ids) != 1:
            fail(f"chaos timeline mixes trace ids: {ids}")
        for needle in ("worker_death", "retry_wait", "attempt_start"):
            if needle not in chaos_names:
                fail(f"chaos timeline lacks {needle!r}: "
                     f"{sorted(set(chaos_names))}")
        resumed = [ev for ev in chaos_events if ev["name"] == "attempt"
                   and ev["args"].get("resume")]
        if not resumed:
            fail("chaos timeline has no resumed attempt span")
        print(f"== chaos timeline valid ({len(chaos_events)} events, "
              f"kill + retry + resume visible)")

        # 4. The dashboard and the status percentiles.
        frame = serve_cli("top", "--once").stdout
        for needle in ("darco serve", "jobs/s", "latency", "workers",
                       "hottest tiers"):
            if needle not in frame:
                fail(f"darco top frame missing {needle!r}:\n{frame}")
        status = serve_cli("status").stdout
        if "queue_wait_ms" not in status or "run_ms" not in status:
            fail(f"darco status lacks latency percentiles:\n{status}")
        print("== darco top frame + status percentiles render")

        # 5. Flight recorder on a failed job, exported as an artifact.
        # Fresh params (scale differs from the chaos job) so the cached
        # chaos result cannot answer it; the tight deadline kills it.
        dead = serve_cli("submit", "arch_run",
                         "--params",
                         json.dumps({"workload": "429.mcf",
                                     "scale": 0.35}),
                         "--deadline", "0.2", "--max-attempts", "1")
        dead_job = dead.stdout.split()[1]
        post = WORKROOT / "postmortem.json"
        fetched = serve_cli("fetch", dead_job, "--wait",
                            "--timeout", "120",
                            "--postmortem", str(post), check=False)
        if fetched.returncode != 1:
            fail(f"fetch on a failed job exited {fetched.returncode}\n"
                 f"{fetched.stdout}{fetched.stderr}")
        if "flight recorder" not in fetched.stderr:
            fail(f"fetch printed no flight recorder:\n{fetched.stderr}")
        if not post.exists():
            fail("fetch --postmortem wrote no artifact")
        artifact = json.loads(post.read_text())
        if artifact.get("kind") != "job_postmortem":
            fail(f"postmortem artifact malformed: {artifact.get('kind')}")
        kinds = {(ev["kind"], ev["name"]) for ev in
                 (artifact["payload"].get("flight") or {})
                 .get("events", ())}
        if ("incident", "deadline_kill") not in kinds:
            fail(f"postmortem missing deadline_kill incident: {kinds}")
        print("== failed job carries flight recorder; postmortem written")
    finally:
        server.send_signal(signal.SIGINT)
        try:
            out, _ = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            out, _ = server.communicate()
            fail("serve did not shut down on SIGINT")

    if server.returncode != 0:
        fail(f"serve exited {server.returncode}:\n{out}")
    shutil.rmtree(WORKROOT, ignore_errors=True)
    print("obs smoke: OK")


if __name__ == "__main__":
    main()
